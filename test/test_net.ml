(* Tests for the network substrate: link timing, routing, counters, the
   reliable multicast, and the ingress/egress nodes' replication and
   median-release semantics. *)

module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Net = Sw_net.Network
module Packet = Sw_net.Packet
module Address = Sw_net.Address

type Packet.payload += Tag of int

let quiet_link =
  { Net.latency = Time.ms 1; jitter = Time.zero; bandwidth_bps = 0; loss = 0. }

let setup ?(default = quiet_link) () =
  let engine = Engine.create () in
  let net = Net.create engine ~default in
  (engine, net)

let send net ~src ~dst ?(size = 100) payload =
  Net.send net (Packet.make ~src ~dst ~size ~seq:(Net.fresh_seq net) payload)

(* --- Link timing ----------------------------------------------------------- *)

let test_latency () =
  let engine, net = setup () in
  let arrival = ref Time.zero in
  Net.register net (Address.Host 1) (fun _ -> arrival := Engine.now engine);
  send net ~src:(Address.Host 0) ~dst:(Address.Host 1) (Tag 1);
  Engine.run engine;
  Alcotest.(check int64) "latency applied" (Time.ms 1) !arrival

let test_serialisation () =
  let engine, net = setup () in
  let default =
    { Net.latency = Time.zero; jitter = Time.zero; bandwidth_bps = 8_000_000; loss = 0. }
  in
  let net2 = Net.create engine ~default in
  let arrivals = ref [] in
  Net.register net2 (Address.Host 1) (fun _ ->
      arrivals := Engine.now engine :: !arrivals);
  (* 1000-byte packets at 8 Mb/s serialize in 1 ms each, FIFO. *)
  send net2 ~src:(Address.Host 0) ~dst:(Address.Host 1) ~size:1000 (Tag 1);
  send net2 ~src:(Address.Host 0) ~dst:(Address.Host 1) ~size:1000 (Tag 2);
  Engine.run engine;
  ignore net;
  Alcotest.(check (list int64)) "back-to-back serialisation"
    [ Time.ms 1; Time.ms 2 ]
    (List.rev !arrivals)

let test_fifo_no_reorder () =
  let engine = Engine.create () in
  let default =
    { Net.latency = Time.ms 1; jitter = Time.us 900; bandwidth_bps = 0; loss = 0. }
  in
  let net = Net.create engine ~default in
  let order = ref [] in
  Net.register net (Address.Host 1) (fun pkt ->
      match pkt.Packet.payload with Tag n -> order := n :: !order | _ -> ());
  for i = 1 to 50 do
    send net ~src:(Address.Host 0) ~dst:(Address.Host 1) (Tag i)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "jitter never reorders a link"
    (List.init 50 (fun i -> i + 1))
    (List.rev !order)

let test_loss () =
  let engine = Engine.create () in
  let default = { quiet_link with Net.loss = 1.0 } in
  let net = Net.create engine ~default in
  let got = ref 0 in
  Net.register net (Address.Host 1) (fun _ -> incr got);
  send net ~src:(Address.Host 0) ~dst:(Address.Host 1) (Tag 1);
  Engine.run engine;
  Alcotest.(check int) "all lost" 0 !got;
  Alcotest.(check int) "loss counted" 1 (Net.lost net)

(* --- Routing / counters ------------------------------------------------------ *)

let test_route_rewrite () =
  let engine, net = setup () in
  let at_ingress = ref 0 and at_vm = ref 0 in
  Net.register net Address.Ingress (fun _ -> incr at_ingress);
  Net.register net (Address.Vm 3) (fun _ -> incr at_vm);
  Net.set_route net ~dst:(Address.Vm 3) ~via:Address.Ingress;
  send net ~src:(Address.Host 0) ~dst:(Address.Vm 3) (Tag 1);
  Engine.run engine;
  Alcotest.(check int) "delivered via ingress" 1 !at_ingress;
  Alcotest.(check int) "vm handler bypassed" 0 !at_vm;
  Net.clear_route net ~dst:(Address.Vm 3);
  send net ~src:(Address.Host 0) ~dst:(Address.Vm 3) (Tag 2);
  Engine.run engine;
  Alcotest.(check int) "after clear, direct" 1 !at_vm

let test_undeliverable () =
  let engine, net = setup () in
  send net ~src:(Address.Host 0) ~dst:(Address.Host 9) (Tag 1);
  Engine.run engine;
  Alcotest.(check int) "undeliverable counted" 1 (Net.undeliverable net)

let test_counters () =
  let engine, net = setup () in
  Net.register net (Address.Host 1) (fun _ -> ());
  for _ = 1 to 3 do
    send net ~src:(Address.Host 0) ~dst:(Address.Host 1) (Tag 0)
  done;
  Engine.run engine;
  Alcotest.(check int) "pair count" 3
    (Net.count net ~src:(Address.Host 0) ~dst:(Address.Host 1));
  Alcotest.(check int) "delivered" 3 (Net.delivered net);
  Net.reset_counters net;
  Alcotest.(check int) "reset" 0
    (Net.count net ~src:(Address.Host 0) ~dst:(Address.Host 1))

let test_broadcast () =
  let engine, net = setup () in
  let got = ref [] in
  List.iter
    (fun i -> Net.register net (Address.Host i) (fun _ -> got := i :: !got))
    [ 0; 1; 2 ];
  send net ~src:(Address.Host 0) ~dst:Address.Broadcast_addr (Tag 1);
  Engine.run engine;
  Alcotest.(check (list int)) "everyone but sender" [ 1; 2 ]
    (List.sort compare !got)

let test_node_link_override () =
  let engine, net = setup () in
  Net.set_node_link net (Address.Host 1)
    { quiet_link with Net.latency = Time.ms 10 };
  let arrival = ref Time.zero in
  Net.register net (Address.Host 1) (fun _ -> arrival := Engine.now engine);
  send net ~src:(Address.Vm 5) ~dst:(Address.Host 1) (Tag 1);
  Engine.run engine;
  Alcotest.(check int64) "node override used" (Time.ms 10) !arrival

(* --- Multicast ---------------------------------------------------------------- *)

let mcast_setup ?(loss = 0.) ?heartbeat () =
  let engine = Engine.create () in
  let default = { quiet_link with Net.loss } in
  let net = Net.create engine ~default in
  let members = [ Address.Vmm 0; Address.Vmm 1; Address.Vmm 2 ] in
  let g = Sw_net.Multicast.group net ~members ?heartbeat () in
  let received = Hashtbl.create 8 in
  let endpoints =
    List.map
      (fun self ->
        let ep =
          Sw_net.Multicast.endpoint g ~self
            ~deliver:(fun pkt ->
              let existing =
                match Hashtbl.find_opt received self with Some l -> l | None -> []
              in
              Hashtbl.replace received self (pkt.Packet.payload :: existing))
            ()
        in
        Net.register net self (fun pkt -> Sw_net.Multicast.handle ep pkt);
        (self, ep))
      members
  in
  (engine, endpoints, received)

let test_mcast_basic () =
  let engine, endpoints, received = mcast_setup () in
  let _, ep0 = List.hd endpoints in
  Sw_net.Multicast.publish ep0 ~size:100 (Tag 1);
  Sw_net.Multicast.publish ep0 ~size:100 (Tag 2);
  Engine.run engine;
  List.iter
    (fun self ->
      let payloads = List.rev (Hashtbl.find received self) in
      Alcotest.(check int)
        (Address.to_string self ^ " got both")
        2 (List.length payloads);
      match payloads with
      | [ Tag 1; Tag 2 ] -> ()
      | _ -> Alcotest.fail "in-order delivery expected")
    [ Address.Vmm 1; Address.Vmm 2 ];
  Alcotest.(check bool) "sender does not self-deliver" true
    (not (Hashtbl.mem received (Address.Vmm 0)))

let test_mcast_loss_recovery () =
  (* With a lossy fabric and heartbeats, everything still arrives in order. *)
  let engine, endpoints, received = mcast_setup ~loss:0.3 ~heartbeat:(Time.ms 5) () in
  let _, ep0 = List.hd endpoints in
  for i = 1 to 20 do
    Sw_net.Multicast.publish ep0 ~size:100 (Tag i)
  done;
  Engine.run ~until:(Time.s 2) engine;
  List.iter
    (fun self ->
      let payloads = List.rev (Hashtbl.find received self) in
      let tags = List.filter_map (function Tag n -> Some n | _ -> None) payloads in
      Alcotest.(check (list int))
        (Address.to_string self ^ " complete in-order stream")
        (List.init 20 (fun i -> i + 1))
        tags)
    [ Address.Vmm 1; Address.Vmm 2 ]

let test_mcast_rejects_foreign () =
  let engine, endpoints, _ = mcast_setup () in
  ignore engine;
  let _, ep0 = List.hd endpoints in
  Alcotest.check_raises "non-multicast packet" (Invalid_argument "x") (fun () ->
      try
        Sw_net.Multicast.handle ep0
          (Packet.make ~src:(Address.Vmm 1) ~dst:(Address.Vmm 0) ~size:10 ~seq:1
             (Tag 1))
      with Invalid_argument _ -> raise (Invalid_argument "x"))

(* --- Ingress / egress ------------------------------------------------------------ *)

let test_ingress_replicates () =
  let engine, net = setup () in
  let ingress = Sw_net.Ingress.create net in
  let got = Hashtbl.create 4 in
  List.iter
    (fun m ->
      Net.register net (Address.Vmm m) (fun pkt ->
          match pkt.Packet.payload with
          | Packet.Guest_bound { vm; ingress_seq; inner } ->
              Hashtbl.replace got m (vm, ingress_seq, inner.Packet.payload)
          | _ -> ()))
    [ 0; 1; 2 ];
  Sw_net.Ingress.register_vm ingress ~vm:7
    ~replica_vmms:[ Address.Vmm 0; Address.Vmm 1; Address.Vmm 2 ];
  send net ~src:(Address.Host 0) ~dst:(Address.Vm 7) (Tag 42);
  Engine.run engine;
  List.iter
    (fun m ->
      match Hashtbl.find_opt got m with
      | Some (7, 0, Tag 42) -> ()
      | _ -> Alcotest.failf "machine %d did not get the replica" m)
    [ 0; 1; 2 ];
  Alcotest.(check int) "replicated count" 1 (Sw_net.Ingress.replicated ingress)

let test_ingress_drops_unknown () =
  let engine, net = setup () in
  let ingress = Sw_net.Ingress.create net in
  Net.set_route net ~dst:(Address.Vm 9) ~via:Address.Ingress;
  send net ~src:(Address.Host 0) ~dst:(Address.Vm 9) (Tag 1);
  Engine.run engine;
  Alcotest.(check int) "dropped" 1 (Sw_net.Ingress.dropped ingress)

let egress_copy net ~vm ~replica ~seq payload =
  let inner =
    Packet.make ~src:(Address.Vm vm) ~dst:(Address.Host 1) ~size:100 ~seq payload
  in
  Net.send net
    (Packet.make ~src:(Address.Vmm replica) ~dst:Address.Egress ~size:148
       ~seq:(Net.fresh_seq net)
       (Packet.Egress_tunnel { vm; replica; inner }))

let test_egress_releases_on_second_copy () =
  let engine, net = setup () in
  let egress = Sw_net.Egress.create net in
  Sw_net.Egress.register_vm egress ~vm:7 ~replicas:3;
  let arrivals = ref [] in
  Net.register net (Address.Host 1) (fun pkt ->
      arrivals := (Engine.now engine, pkt.Packet.payload) :: !arrivals);
  (* Copies from the three replicas at 0, 5 and 9 ms: the median (2nd) copy
     at 5 ms must trigger the single forward. *)
  egress_copy net ~vm:7 ~replica:0 ~seq:0 (Tag 1);
  ignore
    (Engine.schedule_at engine (Time.ms 5) (fun () ->
         egress_copy net ~vm:7 ~replica:1 ~seq:0 (Tag 1)));
  ignore
    (Engine.schedule_at engine (Time.ms 9) (fun () ->
         egress_copy net ~vm:7 ~replica:2 ~seq:0 (Tag 1)));
  Engine.run engine;
  (match !arrivals with
  | [ (at, Tag 1) ] ->
      (* 5 ms (second copy sent) + 1 ms to egress + 1 ms to host. *)
      Alcotest.(check int64) "released at median" (Time.ms 7) at
  | _ -> Alcotest.fail "exactly one forward expected");
  Alcotest.(check int) "forwarded" 1 (Sw_net.Egress.forwarded egress)

let test_egress_five_replicas () =
  let engine, net = setup () in
  let egress = Sw_net.Egress.create net in
  Sw_net.Egress.register_vm egress ~vm:7 ~replicas:5;
  let count = ref 0 in
  Net.register net (Address.Host 1) (fun _ -> incr count);
  for r = 0 to 4 do
    ignore
      (Engine.schedule_at engine (Time.ms r) (fun () ->
           egress_copy net ~vm:7 ~replica:r ~seq:0 (Tag 1)))
  done;
  Engine.run engine;
  Alcotest.(check int) "one release from five copies" 1 !count

let test_egress_output_vote () =
  let engine, net = setup () in
  let egress = Sw_net.Egress.create net in
  Sw_net.Egress.register_vm egress ~vm:7 ~replicas:3;
  Net.register net (Address.Host 1) (fun _ -> ());
  egress_copy net ~vm:7 ~replica:0 ~seq:0 (Tag 1);
  egress_copy net ~vm:7 ~replica:1 ~seq:0 (Tag 1);
  (* The third replica diverged and emitted different content. *)
  egress_copy net ~vm:7 ~replica:2 ~seq:0 (Tag 999);
  Engine.run engine;
  Alcotest.(check int) "vote failure detected" 1 (Sw_net.Egress.mismatches egress);
  Alcotest.(check int) "still released on median copy" 1
    (Sw_net.Egress.forwarded egress)

let test_egress_even_replicas_rejected () =
  let _, net = setup () in
  let egress = Sw_net.Egress.create net in
  Alcotest.check_raises "even replicas" (Invalid_argument "x") (fun () ->
      try Sw_net.Egress.register_vm egress ~vm:1 ~replicas:2 with
      | Invalid_argument _ -> raise (Invalid_argument "x"))

let () =
  Alcotest.run "sw_net"
    [
      ( "links",
        [
          Alcotest.test_case "latency" `Quick test_latency;
          Alcotest.test_case "serialisation" `Quick test_serialisation;
          Alcotest.test_case "fifo under jitter" `Quick test_fifo_no_reorder;
          Alcotest.test_case "loss" `Quick test_loss;
        ] );
      ( "routing",
        [
          Alcotest.test_case "route rewrite" `Quick test_route_rewrite;
          Alcotest.test_case "undeliverable" `Quick test_undeliverable;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "node link override" `Quick test_node_link_override;
        ] );
      ( "multicast",
        [
          Alcotest.test_case "basic fan-out" `Quick test_mcast_basic;
          Alcotest.test_case "loss recovery" `Quick test_mcast_loss_recovery;
          Alcotest.test_case "rejects foreign packets" `Quick test_mcast_rejects_foreign;
        ] );
      ( "ingress-egress",
        [
          Alcotest.test_case "ingress replicates" `Quick test_ingress_replicates;
          Alcotest.test_case "ingress drops unknown" `Quick test_ingress_drops_unknown;
          Alcotest.test_case "egress median release" `Quick
            test_egress_releases_on_second_copy;
          Alcotest.test_case "egress with five replicas" `Quick
            test_egress_five_replicas;
          Alcotest.test_case "egress output vote" `Quick test_egress_output_vote;
          Alcotest.test_case "egress rejects even replica count" `Quick
            test_egress_even_replicas_rejected;
        ] );
    ]
