(* Tests for the VMM layer: configuration validation, the machine's Dom0
   FIFO and NIC, replica-group skew limiting, epoch resynchronisation, and
   the median helper. *)

module Time = Sw_sim.Time
module Engine = Sw_sim.Engine
module Config = Sw_vmm.Config
module Machine = Sw_vmm.Machine
module Rg = Sw_vmm.Replica_group

(* --- Config ------------------------------------------------------------------ *)

let expect_invalid name f =
  Alcotest.check_raises name (Invalid_argument "x") (fun () ->
      try f () with Invalid_argument _ -> raise (Invalid_argument "x"))

let test_config_validate () =
  Config.validate Config.default;
  expect_invalid "even replicas" (fun () ->
      Config.validate { Config.default with Config.replicas = 2 });
  expect_invalid "zero quantum" (fun () ->
      Config.validate { Config.default with Config.quantum = Time.zero });
  expect_invalid "negative delta_n" (fun () ->
      Config.validate { Config.default with Config.delta_n = Time.zero });
  expect_invalid "bad epoch bounds" (fun () ->
      Config.validate
        {
          Config.default with
          Config.epoch =
            Some { Config.interval_branches = 1000L; slope_l = 2.; slope_u = 1. };
        })

let test_slice_branches () =
  let c = { Config.default with Config.quantum = Time.us 200; branches_per_ns = 1.0 } in
  Alcotest.(check int64) "200k branches" 200_000L (Config.slice_branches c)

(* --- Machine ------------------------------------------------------------------- *)

let machine_setup () =
  let engine = Engine.create () in
  let net = Sw_net.Network.create engine ~default:Sw_net.Network.lan in
  let mach = Machine.create engine net ~id:0 ~config:Config.default () in
  (engine, net, mach)

let test_dom0_fifo () =
  let engine, _, mach = machine_setup () in
  let log = ref [] in
  Machine.dom0_execute mach ~cost:(Time.ms 1) (fun () ->
      log := (1, Engine.now engine) :: !log);
  Machine.dom0_execute mach ~cost:(Time.ms 2) (fun () ->
      log := (2, Engine.now engine) :: !log);
  Engine.run engine;
  Alcotest.(check (list (pair int int64)))
    "fifo completion"
    [ (1, Time.ms 1); (2, Time.ms 3) ]
    (List.rev !log);
  Alcotest.(check int64) "total accounted" (Time.ms 3) (Machine.dom0_time mach)

let test_slice_loop () =
  let engine, _, mach = machine_setup () in
  let slices = ref 0 in
  let running = ref true in
  Machine.attach mach
    {
      Machine.name = "test";
      runnable = (fun () -> !running);
      on_slice_end = (fun ~slice_start:_ -> incr slices);
    };
  Engine.run ~until:(Time.ms 1) engine;
  (* 1 ms / 200 us quantum = 5 slices. *)
  Alcotest.(check int) "five slices" 5 !slices;
  (* Block the resident; the already-scheduled slice completes, then the
     loop parks. *)
  running := false;
  Engine.run ~until:(Time.ms 2) engine;
  Alcotest.(check int) "parked after in-flight slice" 6 !slices;
  (* Wake resumes. *)
  running := true;
  Machine.wake mach;
  Engine.run ~until:(Time.ms 3) engine;
  Alcotest.(check int) "resumed" 11 !slices

let test_independent_residents () =
  (* Each guest has its own core: two residents each get full-rate slices. *)
  let engine, _, mach = machine_setup () in
  let a = ref 0 and b = ref 0 in
  let attach counter =
    Machine.attach mach
      {
        Machine.name = "r";
        runnable = (fun () -> true);
        on_slice_end = (fun ~slice_start:_ -> incr counter);
      }
  in
  attach a;
  attach b;
  Engine.run ~until:(Time.ms 1) engine;
  Alcotest.(check int) "a full rate" 5 !a;
  Alcotest.(check int) "b full rate" 5 !b

let test_dma_engine_fifo () =
  let engine, _, mach = machine_setup () in
  (* Default engine: 8 Gb/s -> 1 MB transfers in 1 ms, FIFO. *)
  let finishes = ref [] in
  for i = 1 to 2 do
    Machine.dma_execute mach ~bytes:1_000_000 (fun () ->
        finishes := (i, Engine.now engine) :: !finishes)
  done;
  Engine.run engine;
  Alcotest.(check (list (pair int int64)))
    "serialised transfers"
    [ (1, Time.ms 1); (2, Time.ms 2) ]
    (List.rev !finishes)

let test_transmit_reaches_network () =
  let engine, net, mach = machine_setup () in
  let got = ref 0 in
  Sw_net.Network.register net (Sw_net.Address.Host 1) (fun _ -> incr got);
  Machine.transmit mach
    (Sw_net.Packet.make ~src:(Machine.address mach) ~dst:(Sw_net.Address.Host 1)
       ~size:100 ~seq:1 Sw_net.Packet.Empty);
  Engine.run engine;
  Alcotest.(check int) "delivered" 1 !got

(* --- Replica group ---------------------------------------------------------------- *)

let add_member ?(wake = fun () -> ()) ?(apply = fun ~at_instr:_ ~slope_ns_per_branch:_ -> ())
    ?(send = fun ~epoch:_ ~d:_ ~r:_ -> ()) group ~machine =
  Rg.add_member group ~machine ~wake ~apply_slope:apply ~send_report:send

let test_median_time () =
  Alcotest.(check int64) "median of 3" (Time.ms 2)
    (Rg.median_time [| Time.ms 3; Time.ms 1; Time.ms 2 |]);
  Alcotest.(check int64) "median of 5" (Time.ms 4)
    (Rg.median_time [| Time.ms 9; Time.ms 1; Time.ms 4; Time.ms 5; Time.ms 2 |]);
  expect_invalid "even count" (fun () ->
      ignore (Rg.median_time [| Time.ms 1; Time.ms 2 |]))

let test_skew_blocks_fastest () =
  let group = Rg.create ~vm:0 ~config:Config.default ~mode:Rg.Stopwatch () in
  let woken = ref 0 in
  let m0 = add_member group ~machine:0 in
  let m1 = add_member group ~machine:1 in
  let m2 = add_member group ~machine:2 ~wake:(fun () -> incr woken) in
  (* Note: skew_bound defaults to 2 ms. m2 races ahead by 5 ms. *)
  Rg.note_exit group m0 ~now:(Time.ms 1) ~virt:(Time.ms 1) ~instr:1_000_000L;
  Rg.note_exit group m1 ~now:(Time.ms 1) ~virt:(Time.ms 1) ~instr:1_000_000L;
  Rg.note_exit group m2 ~now:(Time.ms 6) ~virt:(Time.ms 6) ~instr:6_000_000L;
  Alcotest.(check bool) "fastest blocked" true (Rg.blocked group m2);
  Alcotest.(check bool) "others run" false (Rg.blocked group m0);
  (* The second replica catches up; the fastest unblocks (and is woken). *)
  Rg.note_exit group m1 ~now:(Time.ms 5) ~virt:(Time.ms 5) ~instr:5_000_000L;
  Alcotest.(check bool) "unblocked" false (Rg.blocked group m2);
  Alcotest.(check int) "woken once" 1 !woken

let test_skew_ties_do_not_block () =
  let group = Rg.create ~vm:0 ~config:Config.default ~mode:Rg.Stopwatch () in
  let m0 = add_member group ~machine:0 in
  let m1 = add_member group ~machine:1 in
  let m2 = add_member group ~machine:2 in
  Rg.note_exit group m0 ~now:(Time.ms 9) ~virt:(Time.ms 9) ~instr:1L;
  Rg.note_exit group m1 ~now:(Time.ms 9) ~virt:(Time.ms 9) ~instr:1L;
  Rg.note_exit group m2 ~now:(Time.ms 1) ~virt:(Time.ms 1) ~instr:1L;
  (* Two fastest are tied: nobody may be blocked, however far the third lags. *)
  Alcotest.(check bool) "m0 runs" false (Rg.blocked group m0);
  Alcotest.(check bool) "m1 runs" false (Rg.blocked group m1);
  Alcotest.(check bool) "m2 runs" false (Rg.blocked group m2)

let test_baseline_mode_inert () =
  let config = { Config.default with Config.replicas = 1 } in
  let group = Rg.create ~vm:0 ~config ~mode:Rg.Baseline () in
  let m0 = add_member group ~machine:0 in
  Rg.note_exit group m0 ~now:(Time.ms 1) ~virt:(Time.ms 99) ~instr:1L;
  Alcotest.(check bool) "never blocked" false (Rg.blocked group m0)

let epoch_config =
  {
    Config.default with
    Config.epoch =
      Some { Config.interval_branches = 1_000_000L; slope_l = 0.5; slope_u = 2.0 };
  }

let test_epoch_resolution () =
  let group = Rg.create ~vm:0 ~config:epoch_config ~mode:Rg.Stopwatch () in
  let applied = ref [] in
  let sent = ref [] in
  let mk machine =
    add_member group ~machine
      ~apply:(fun ~at_instr ~slope_ns_per_branch ->
        applied := (machine, at_instr, slope_ns_per_branch) :: !applied)
      ~send:(fun ~epoch ~d ~r -> sent := (machine, epoch, d, r) :: !sent)
  in
  let m0 = mk 0 and m1 = mk 1 and m2 = mk 2 in
  (* All replicas cross the first boundary (1e6 branches) at slightly
     different real times; virt is 1 ms for all (slope 1). *)
  Rg.note_exit group m0 ~now:(Time.ms 1) ~virt:(Time.ms 1) ~instr:1_000_000L;
  Alcotest.(check bool) "m0 epoch-blocked" true (Rg.blocked group m0);
  Alcotest.(check int) "m0 reported" 1 (List.length !sent);
  (* Deliver m0's report to the peers as the network would. *)
  let deliver_all () =
    List.iter
      (fun (from_machine, epoch, d, r) ->
        List.iter
          (fun (m, machine) ->
            if machine <> from_machine then
              Rg.receive_report group ~at:m ~from_replica:from_machine ~epoch ~d ~r)
          [ (m0, 0); (m1, 1); (m2, 2) ])
      !sent
  in
  Rg.note_exit group m1 ~now:(Time.of_float_ms 1.1) ~virt:(Time.ms 1)
    ~instr:1_000_000L;
  Rg.note_exit group m2 ~now:(Time.of_float_ms 0.9) ~virt:(Time.ms 1)
    ~instr:1_000_000L;
  deliver_all ();
  (* Everyone has all three reports: epoch 0 resolves everywhere with the
     same slope, applied at the same instr. *)
  Alcotest.(check int) "all applied" 3 (List.length !applied);
  (match !applied with
  | (_, i1, s1) :: rest ->
      List.iter
        (fun (_, i, s) ->
          Alcotest.(check int64) "same instr" i1 i;
          Alcotest.(check (float 1e-12)) "same slope" s1 s)
        rest
  | [] -> Alcotest.fail "no applications");
  Alcotest.(check bool) "unblocked" false (Rg.blocked group m0);
  Alcotest.(check int) "epoch advanced" 1 (Rg.epochs_resolved group);
  (* The median report is m0's (now = 1 ms): D* = 1 ms over 1e6 branches ->
     raw slope (Rstar - virt + Dstar) / I = (1 - 1 + 1) ms / 1e6 = 1.0 ns/branch. *)
  match !applied with
  | (_, _, s) :: _ -> Alcotest.(check (float 1e-9)) "slope value" 1.0 s
  | [] -> ()

let test_epoch_out_of_order_reports () =
  (* A fast peer's epoch-1 report arriving while we are still in epoch 0 must
     be buffered, not dropped. *)
  let group = Rg.create ~vm:0 ~config:epoch_config ~mode:Rg.Stopwatch () in
  let m0 = add_member group ~machine:0 in
  let _m1 = add_member group ~machine:1 in
  let _m2 = add_member group ~machine:2 in
  Rg.receive_report group ~at:m0 ~from_replica:1 ~epoch:1 ~d:(Time.ms 1)
    ~r:(Time.ms 2);
  (* Still fine: resolve epoch 0 normally later; the buffered report will be
     used when m0 reaches epoch 1. No assertion beyond "no exception and not
     resolved yet". *)
  Alcotest.(check int) "nothing resolved" 0 (Rg.epochs_resolved group)

let test_divergence_counter () =
  let group = Rg.create ~vm:0 ~config:Config.default ~mode:Rg.Stopwatch () in
  Alcotest.(check int) "zero" 0 (Rg.divergences group);
  Rg.record_divergence group;
  Rg.record_divergence group;
  Alcotest.(check int) "counted" 2 (Rg.divergences group)

let test_group_full () =
  let group = Rg.create ~vm:0 ~config:Config.default ~mode:Rg.Stopwatch () in
  ignore (add_member group ~machine:0);
  ignore (add_member group ~machine:1);
  ignore (add_member group ~machine:2);
  Alcotest.(check bool) "complete" true (Rg.complete group);
  expect_invalid "overfull" (fun () -> ignore (add_member group ~machine:3))

let () =
  Alcotest.run "sw_vmm"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validate;
          Alcotest.test_case "slice branches" `Quick test_slice_branches;
        ] );
      ( "machine",
        [
          Alcotest.test_case "dom0 fifo" `Quick test_dom0_fifo;
          Alcotest.test_case "slice loop & park/wake" `Quick test_slice_loop;
          Alcotest.test_case "independent residents" `Quick test_independent_residents;
          Alcotest.test_case "dma engine" `Quick test_dma_engine_fifo;
          Alcotest.test_case "transmit" `Quick test_transmit_reaches_network;
        ] );
      ( "replica-group",
        [
          Alcotest.test_case "median_time" `Quick test_median_time;
          Alcotest.test_case "skew blocks fastest" `Quick test_skew_blocks_fastest;
          Alcotest.test_case "skew ties" `Quick test_skew_ties_do_not_block;
          Alcotest.test_case "baseline inert" `Quick test_baseline_mode_inert;
          Alcotest.test_case "epoch resolution" `Quick test_epoch_resolution;
          Alcotest.test_case "epoch report buffering" `Quick
            test_epoch_out_of_order_reports;
          Alcotest.test_case "divergence counter" `Quick test_divergence_counter;
          Alcotest.test_case "group capacity" `Quick test_group_full;
        ] );
    ]
