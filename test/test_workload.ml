(* sw_workload: arrival-process counts against their analytic means, DSL
   parse/print round-trips and error positions, the tiered cache's LRU
   mechanics, the fig4.scn = bench/fig4.ml spec equivalence, and the
   engine's -j1 = -j4 byte-identity contract. *)

module Time = Sw_sim.Time
module Prng = Sw_sim.Prng
module Arrival = Sw_workload.Arrival
module Keyspace = Sw_workload.Keyspace
module Cache = Sw_workload.Cache
module Dsl = Sw_workload.Dsl
module Run = Sw_workload.Run
module Scenario = Sw_attack.Scenario
module Pool = Sw_runner.Pool
module Runner = Sw_runner.Runner
module Export = Sw_obs.Export
module Snapshot = Sw_obs.Snapshot

let count_arrivals t ~seed ~until =
  let gen = Arrival.generator t ~rng:(Prng.create seed) ~until in
  let rec go n last =
    match Arrival.next gen with
    | None -> n
    | Some at ->
        assert (Time.compare at last > 0);
        assert (Time.compare at until < 0);
        go (n + 1) at
  in
  go 0 (Time.ns (-1))

(* Sampled counts stay within a 5-sigma Poisson band of the analytic mean:
   loose enough never to flake over the qcheck seed range, tight enough to
   catch a wrong envelope or integral. *)
let check_count t ~seed ~until =
  let mean = Arrival.mean_count t ~until in
  let n = float_of_int (count_arrivals t ~seed ~until) in
  let slack = (5. *. sqrt mean) +. 10. in
  abs_float (n -. mean) <= slack

let prop_poisson_count =
  QCheck.Test.make ~count:40 ~name:"Poisson arrivals match the analytic mean"
    QCheck.(pair (int_range 10 400) int64)
    (fun (rate, seed) ->
      check_count
        (Arrival.Poisson { rate_per_s = float_of_int rate })
        ~seed ~until:(Time.s 10))

let prop_diurnal_count =
  QCheck.Test.make ~count:40 ~name:"diurnal arrivals match the analytic mean"
    QCheck.(triple (int_range 10 300) (float_range 0. 1.) int64)
    (fun (base, amplitude, seed) ->
      check_count
        (Arrival.Diurnal
           { base_per_s = float_of_int base; amplitude; period = Time.s 3 })
        ~seed ~until:(Time.s 10))

let prop_flash_count =
  QCheck.Test.make ~count:40 ~name:"flash-crowd arrivals match the analytic mean"
    QCheck.(pair (int_range 20 200) int64)
    (fun (peak, seed) ->
      check_count
        (Arrival.Flash
           {
             base_per_s = 15.;
             peak_per_s = float_of_int (peak + 20);
             at = Time.s 2;
             ramp = Time.ms 500;
             hold = Time.s 1;
           })
        ~seed ~until:(Time.s 6))

let test_constant_exact () =
  (* 50/s for 2 s: arrivals at 20 ms, 40 ms, ..., strictly below 2 s. *)
  let n =
    count_arrivals (Arrival.Constant { rate_per_s = 50. }) ~seed:1L
      ~until:(Time.s 2)
  in
  Alcotest.(check int) "constant count" 99 n;
  Alcotest.(check (float 1e-9))
    "constant mean"
    100.
    (Arrival.mean_count (Arrival.Constant { rate_per_s = 50. }) ~until:(Time.s 2))

let test_replay_mean () =
  let t =
    Arrival.Replay
      { points = [ (Time.s 0, 10.); (Time.s 1, 100.); (Time.s 2, 0.) ] }
  in
  Alcotest.(check (float 1e-6))
    "replay integral" 110.
    (Arrival.mean_count t ~until:(Time.s 5));
  Alcotest.(check bool) "replay sampled count" true
    (check_count t ~seed:7L ~until:(Time.s 5))

let test_arrival_determinism () =
  let t =
    Arrival.Diurnal { base_per_s = 120.; amplitude = 0.7; period = Time.s 2 }
  in
  let enumerate seed =
    let gen = Arrival.generator t ~rng:(Prng.create seed) ~until:(Time.s 4) in
    let rec go acc =
      match Arrival.next gen with None -> List.rev acc | Some a -> go (a :: acc)
    in
    go []
  in
  Alcotest.(check bool) "same seed, same instants" true
    (enumerate 42L = enumerate 42L);
  Alcotest.(check bool) "different seed, different instants" false
    (enumerate 42L = enumerate 43L)

(* --- keyspace ------------------------------------------------------------- *)

let test_zipf_weights () =
  let ks = Keyspace.create ~keys:100 ~theta:1.1 in
  let total = ref 0. in
  for k = 0 to 99 do
    total := !total +. Keyspace.weight ks k
  done;
  Alcotest.(check (float 1e-9)) "weights normalise" 1. !total;
  Alcotest.(check bool) "head hotter than tail" true
    (Keyspace.weight ks 0 > 10. *. Keyspace.weight ks 99);
  let uniform = Keyspace.create ~keys:10 ~theta:0. in
  Alcotest.(check (float 1e-9)) "theta=0 is uniform" 0.1 (Keyspace.weight uniform 3)

let test_zipf_sample_range () =
  let ks = Keyspace.create ~keys:64 ~theta:1.3 in
  let rng = Prng.create 5L in
  for _ = 1 to 10_000 do
    let k = Keyspace.sample ks rng in
    if k < 0 || k >= 64 then Alcotest.fail "sample out of range"
  done

(* --- cache ---------------------------------------------------------------- *)

let two_tier =
  {
    Cache.tiers =
      [
        { Cache.capacity = 2; hit_cost = Time.us 10 };
        { Cache.capacity = 3; hit_cost = Time.us 100 };
      ];
    origin_cost = Time.ms 1;
  }

let test_cache_mechanics () =
  let c = Cache.create two_tier in
  (match Cache.access c 1 with
  | Cache.Miss { cost } ->
      Alcotest.(check int64) "miss pays origin" (Time.ms 1) cost
  | Cache.Hit _ -> Alcotest.fail "cold access hit");
  (match Cache.access c 1 with
  | Cache.Hit { tier; cost } ->
      Alcotest.(check int) "warm hit in tier 0" 0 tier;
      Alcotest.(check int64) "hit pays tier cost" (Time.us 10) cost
  | Cache.Miss _ -> Alcotest.fail "warm access missed");
  (* Fill past tier 0: the LRU tail demotes to tier 1 and hits there. *)
  ignore (Cache.access c 2);
  ignore (Cache.access c 3);
  (match Cache.access c 1 with
  | Cache.Hit { tier; _ } -> Alcotest.(check int) "demoted to tier 1" 1 tier
  | Cache.Miss _ -> Alcotest.fail "demoted key evicted");
  Alcotest.(check int) "population tracks inserts" 3 (Cache.population c);
  Alcotest.(check int) "hit count" 2 (Cache.hits c);
  Alcotest.(check int) "miss count" 3 (Cache.misses c)

let test_cache_eviction () =
  let c = Cache.create two_tier in
  (* Capacity 2 + 3 = 5; six distinct keys must evict the coldest. *)
  for k = 0 to 5 do
    ignore (Cache.access c k)
  done;
  Alcotest.(check int) "population capped" 5 (Cache.population c);
  match Cache.access c 0 with
  | Cache.Miss _ -> ()
  | Cache.Hit _ -> Alcotest.fail "evicted key still resident"

(* --- DSL ------------------------------------------------------------------ *)

(* dune runtest runs in _build/default/test; dune exec from the repo root. *)
let scn file =
  let candidates =
    [ Filename.concat "../examples" file; Filename.concat "examples" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Filename.concat "../examples" file

let load file =
  match Dsl.load_file (scn file) with
  | Ok t -> t
  | Error e -> Alcotest.failf "%s failed to load: %s" file e

let test_roundtrip () =
  List.iter
    (fun file ->
      let t = load file in
      let printed = Dsl.print t in
      match Dsl.parse printed with
      | Error e -> Alcotest.failf "%s: reprint does not parse: %s" file e
      | Ok t' ->
          if t <> t' then
            Alcotest.failf "%s: parse -> print -> parse not the identity" file;
          (* print is deterministic, so a second round is byte-stable. *)
          Alcotest.(check string) "print stable" printed (Dsl.print t'))
    [
      "fig4.scn"; "diurnal.scn"; "flash_crowd.scn"; "kv_skew.scn";
      "trace_replay.scn";
    ]

let expect_error ~substring source =
  match Dsl.parse source with
  | Ok _ -> Alcotest.failf "expected a parse error mentioning %S" substring
  | Error e ->
      let contains hay needle =
        let h = String.length hay and n = String.length needle in
        let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
        n = 0 || go 0
      in
      if not (contains e substring) then
        Alcotest.failf "error %S does not mention %S" e substring

let test_error_positions () =
  (* Lexical error: the reader reports line and column. *)
  expect_error ~substring:"line 3" "{\n  \"name\": \"x\",\n  \"kind\": }\n";
  expect_error ~substring:"column 11" "{\n  \"name\": \"x\",\n  \"kind\": }\n";
  (* Structural errors: the decoder reports the field path. *)
  expect_error ~substring:"scenario.kind"
    {|{ "name": "x", "kind": "neither" }|};
  expect_error ~substring:"arrival.process"
    {|{ "name": "x", "kind": "workload",
       "arrival": { "process": "diurnl", "base_per_s": 10 } }|};
  expect_error ~substring:"missing required field"
    {|{ "name": "x", "kind": "workload" }|};
  expect_error ~substring:"faults[0]"
    {|{ "name": "x", "kind": "workload",
       "arrival": { "process": "poisson", "rate_per_s": 10 },
       "faults": [ { "at_ms": 5, "kind": "warp-core-breach" } ] }|}

let test_fig4_scn_matches_bench () =
  (* The DSL-compiled fig4 family must be structurally identical to the
     hand-built list bench/fig4.ml carried before it loaded the .scn file;
     identical specs make Scenario.run reproduce the seed output byte for
     byte. *)
  let specs =
    match load "fig4.scn" with
    | { Dsl.kind = Dsl.Attack a; _ } -> Dsl.attack_specs a
    | _ -> Alcotest.fail "fig4.scn is not an attack scenario"
  in
  let base = { Scenario.default with Scenario.duration = Time.s 60 } in
  let expected =
    [
      ("fig4/sw/no-victim", { base with Scenario.victim = false });
      ("fig4/sw/victim", { base with Scenario.victim = true });
      ("fig4/base/no-victim", { base with Scenario.baseline = true; victim = false });
      ("fig4/base/victim", { base with Scenario.baseline = true; victim = true });
    ]
  in
  Alcotest.(check int) "variant count" (List.length expected) (List.length specs);
  List.iter2
    (fun (k, s) (k', s') ->
      Alcotest.(check string) "key" k' k;
      if s <> s' then Alcotest.failf "%s: compiled spec differs from seed" k)
    specs expected

let test_variant_expansion () =
  let w =
    match load "kv_skew.scn" with
    | { Dsl.kind = Dsl.Workload w; _ } -> w
    | _ -> Alcotest.fail "kv_skew.scn is not a workload"
  in
  let variants = Dsl.workload_variants ~name:"kv" w in
  Alcotest.(check (list string))
    "keys" [ "kv/x0.5"; "kv/x1"; "kv/x2" ]
    (List.map fst variants);
  let seeds = List.map (fun (_, v) -> v.Dsl.seed) variants in
  Alcotest.(check bool) "seeds distinct" true
    (List.length (List.sort_uniq Int64.compare seeds) = 3);
  let rate v =
    match v.Dsl.arrival with
    | Arrival.Poisson { rate_per_s } -> rate_per_s
    | _ -> Alcotest.fail "expected poisson"
  in
  (match variants with
  | [ (_, half); (_, one); (_, two) ] ->
      Alcotest.(check (float 1e-9)) "x0.5 rate" 60. (rate half);
      Alcotest.(check (float 1e-9)) "x1 rate" 120. (rate one);
      Alcotest.(check (float 1e-9)) "x2 rate" 240. (rate two)
  | _ -> Alcotest.fail "expected three variants");
  (* A singleton [1.0] sweep is the identity. *)
  let single = { w with Dsl.load_multipliers = [ 1. ] } in
  match Dsl.workload_variants ~name:"kv" single with
  | [ (k, v) ] ->
      Alcotest.(check string) "singleton key" "kv" k;
      if v <> single then Alcotest.fail "singleton sweep altered the workload"
  | _ -> Alcotest.fail "singleton sweep expanded"

(* --- engine determinism --------------------------------------------------- *)

let small_workload () =
  match load "diurnal.scn" with
  | { Dsl.kind = Dsl.Workload w; _ } ->
      { w with Dsl.duration = Time.ms 800; load_multipliers = [ 0.5; 1. ] }
  | _ -> Alcotest.fail "diurnal.scn is not a workload"

let merged_bytes ~workers =
  let w = small_workload () in
  let jobs =
    List.map
      (fun (key, v) -> Sw_runner.Job.make ~key (fun ~seed:_ -> Run.run v))
      (Dsl.workload_variants ~name:"diurnal" w)
  in
  let outcomes =
    Pool.with_pool ~workers (fun pool -> Runner.map ~pool jobs)
  in
  let results = List.map Runner.get outcomes in
  List.iter
    (fun r ->
      Alcotest.(check bool) "served traffic" true (r.Run.completed > 0))
    results;
  Export.to_json_string
    (Snapshot.merge_all (List.map (fun r -> r.Run.metrics) results))

let test_j1_j4_bytes () =
  Alcotest.(check string)
    "-j1 and -j4 merge to identical bytes" (merged_bytes ~workers:1)
    (merged_bytes ~workers:4)

(* --- sharded determinism -------------------------------------------------- *)

(* The determinism contract excludes the engines' own bookkeeping ([sim.*]
   event counts split differently across shards); everything else must be
   byte-identical. *)
let contract_bytes metrics =
  Export.to_json_string
    (Snapshot.filter metrics ~f:(fun name ->
         not (String.length name >= 4 && String.sub name 0 4 = "sim.")))

let topo ?(stride = 1) ?(partition = Dsl.Contiguous) ?replica_link_us
    ?quantum_us ~hosts ~shards ~east_west_rate_per_s () =
  {
    Dsl.hosts;
    shards;
    east_west_rate_per_s;
    east_west_stride = stride;
    partition;
    replica_link_us;
    quantum_us;
  }

let datacenter_workload () =
  let w = small_workload () in
  {
    w with
    Dsl.duration = Time.ms 400;
    load_multipliers = [ 1. ];
    topology = Some (topo ~hosts:12 ~shards:1 ~east_west_rate_per_s:40. ());
  }

let test_shards_1_vs_4_bytes () =
  let w = datacenter_workload () in
  let run shards =
    let r = Run.run ~shards w in
    Alcotest.(check bool) "served traffic" true (r.Run.completed > 0);
    (r, contract_bytes r.Run.metrics)
  in
  let r1, b1 = run 1 and r4, b4 = run 4 in
  Alcotest.(check int) "issued" r1.Run.issued r4.Run.issued;
  Alcotest.(check int) "completed" r1.Run.completed r4.Run.completed;
  Alcotest.(check (float 0.)) "p50" r1.Run.p50_ms r4.Run.p50_ms;
  Alcotest.(check (float 0.)) "p99" r1.Run.p99_ms r4.Run.p99_ms;
  Alcotest.(check string) "shards=1 and shards=4 metrics bytes" b1 b4

(* The partition analogue of the shard-count contract, on the bench's
   chatty-but-splittable shape: a stride ring whose every east-west edge
   leaves its contiguous block, plus a fast rack-local replica
   interconnect that only the per-pair lookahead matrix can keep out of
   the cross-shard windows. Contiguous blocks under the legacy global
   scalar, and affinity packing under the pairwise matrix, must both
   reproduce the shards=1 bytes — while moving real cross-shard load. *)
let test_partition_and_lookahead_bytes () =
  let w =
    {
      (small_workload ()) with
      Dsl.duration = Time.ms 400;
      load_multipliers = [ 1. ];
      topology =
        Some
          (topo ~stride:2 ~replica_link_us:100. ~hosts:24 ~shards:2
             ~east_west_rate_per_s:40. ());
    }
  in
  let r1 = Run.run ~shards:1 w in
  let contiguous = Run.run ~partition:`Contiguous ~lookahead:`Global w in
  let affinity = Run.run ~partition:`Affinity ~lookahead:`Pairwise w in
  Alcotest.(check bool) "served traffic" true (r1.Run.completed > 0);
  Alcotest.(check string) "contiguous+global bytes"
    (contract_bytes r1.Run.metrics)
    (contract_bytes contiguous.Run.metrics);
  Alcotest.(check string) "affinity+pairwise bytes"
    (contract_bytes r1.Run.metrics)
    (contract_bytes affinity.Run.metrics);
  (* The stride ring cuts every contiguous block boundary; affinity packs
     the stride cycles co-shard, so its cross-shard message count drops. *)
  Alcotest.(check bool) "contiguous pays cross-shard messages" true
    (contiguous.Run.cross_shard > 0);
  Alcotest.(check bool) "affinity cuts the cross-shard load" true
    (affinity.Run.cross_shard < contiguous.Run.cross_shard)

(* Stronger than the planner's own output: ANY valid cell-to-shard map
   (atoms respected by construction — Run expands cells to machines)
   reproduces the shards=1 bytes. Partition is an execution detail. *)
let prop_any_partition_same_bytes =
  let w =
    {
      (small_workload ()) with
      Dsl.duration = Time.ms 300;
      load_multipliers = [ 1. ];
      topology =
        Some
          (topo ~stride:1 ~replica_link_us:150. ~hosts:12 ~shards:2
             ~east_west_rate_per_s:40. ());
    }
  in
  let baseline = lazy (contract_bytes (Run.run ~shards:1 w).Run.metrics) in
  QCheck.Test.make ~name:"random cell maps are byte-identical to shards=1"
    ~count:6
    QCheck.(array_of_size (QCheck.Gen.return 4) (int_range 0 1))
    (fun assign ->
      let r = Run.run ~partition:(`Assign assign) w in
      String.equal (Lazy.force baseline) (contract_bytes r.Run.metrics))

(* Without a topology block the legacy single-cell path runs and [?shards]
   must be a pure no-op: a fig9-style slice is byte-identical — including
   the [sim.*] namespace, since the construction is the same single
   engine. *)
let test_shards_noop_without_topology () =
  let w = { (small_workload ()) with Dsl.load_multipliers = [ 1. ] } in
  let r1 = Run.run w and r4 = Run.run ~shards:4 w in
  Alcotest.(check bool) "served traffic" true (r1.Run.completed > 0);
  Alcotest.(check int) "cross-shard traffic" 0 r4.Run.cross_shard;
  Alcotest.(check string) "full metrics bytes (sim.* included)"
    (Export.to_json_string r1.Run.metrics)
    (Export.to_json_string r4.Run.metrics)

let test_topology_rejects () =
  let w = datacenter_workload () in
  let bad topology = { w with Dsl.topology = Some topology } in
  let rejected w =
    match Dsl.check_topology w with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "hosts not a replica multiple" true
    (rejected (bad (topo ~hosts:13 ~shards:1 ~east_west_rate_per_s:40. ())));
  Alcotest.(check bool) "cells not divisible into shards" true
    (rejected (bad (topo ~hosts:12 ~shards:3 ~east_west_rate_per_s:40. ())));
  Alcotest.(check bool) "east-west stride below one" true
    (rejected
       (bad (topo ~stride:0 ~hosts:12 ~shards:1 ~east_west_rate_per_s:40. ())));
  Alcotest.(check bool) "non-positive replica link latency" true
    (rejected
       (bad
          (topo ~replica_link_us:0. ~hosts:12 ~shards:1
             ~east_west_rate_per_s:40. ())));
  Alcotest.(check bool) "non-positive scheduler quantum" true
    (rejected
       (bad
          (topo ~quantum_us:0. ~hosts:12 ~shards:1 ~east_west_rate_per_s:40.
             ())));
  Alcotest.(check bool) "faults excluded on sharded runs" true
    (rejected
       {
         (bad (topo ~hosts:12 ~shards:2 ~east_west_rate_per_s:40. ())) with
         Dsl.faults =
           [
             Sw_fault.Schedule.at (Time.ms 1)
               (Sw_fault.Fault.Machine_stall { machine = 0 });
           ];
       })

let () =
  Alcotest.run "sw_workload"
    [
      ( "arrival",
        [
          QCheck_alcotest.to_alcotest prop_poisson_count;
          QCheck_alcotest.to_alcotest prop_diurnal_count;
          QCheck_alcotest.to_alcotest prop_flash_count;
          Alcotest.test_case "constant is exact" `Quick test_constant_exact;
          Alcotest.test_case "replay integral" `Quick test_replay_mean;
          Alcotest.test_case "seed-deterministic" `Quick test_arrival_determinism;
        ] );
      ( "keyspace",
        [
          Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
          Alcotest.test_case "sample range" `Quick test_zipf_sample_range;
        ] );
      ( "cache",
        [
          Alcotest.test_case "promote / demote / costs" `Quick
            test_cache_mechanics;
          Alcotest.test_case "eviction cascade" `Quick test_cache_eviction;
        ] );
      ( "dsl",
        [
          Alcotest.test_case "parse -> print -> parse" `Quick test_roundtrip;
          Alcotest.test_case "error positions and paths" `Quick
            test_error_positions;
          Alcotest.test_case "fig4.scn = bench specs" `Quick
            test_fig4_scn_matches_bench;
          Alcotest.test_case "load-multiplier expansion" `Quick
            test_variant_expansion;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "workload merge -j1 = -j4" `Slow test_j1_j4_bytes;
          Alcotest.test_case "datacenter shards=1 = shards=4" `Slow
            test_shards_1_vs_4_bytes;
          Alcotest.test_case "partition & lookahead are execution details"
            `Slow test_partition_and_lookahead_bytes;
          QCheck_alcotest.to_alcotest prop_any_partition_same_bytes;
          Alcotest.test_case "?shards is a no-op without topology" `Slow
            test_shards_noop_without_topology;
          Alcotest.test_case "topology validation" `Quick test_topology_rejects;
        ] );
    ]
