(* Tests for the application layer: the pure TCP machine (with an in-memory
   duplex harness), the HTTP/UDP/NFS services end-to-end on small clouds, and
   the PARSEC application model. *)

module Time = Sw_sim.Time
module Tcp = Sw_apps.Tcp
module App = Sw_vm.App
module Cloud = Stopwatch.Cloud
module Host = Stopwatch.Host

type Sw_net.Packet.payload += Blob of int

(* --- In-memory duplex harness for the pure TCP machine --------------------- *)

type side = {
  ep : Tcp.t;
  mutable delivered : (Sw_net.Packet.payload * int) list;
  mutable timers : (int * Time.t) list;
  mutable connected : bool;
  mutable closed : bool;
  mutable emitted : int;
}

let make_side ~config ~conn ~initiator =
  {
    ep = Tcp.create ~config ~conn ~initiator;
    delivered = [];
    timers = [];
    connected = false;
    closed = false;
    emitted = 0;
  }

(* Process outputs, forwarding emissions to the peer synchronously (a perfect
   zero-latency duplex pipe). *)
let rec perform side peer outputs =
  List.iter
    (fun output ->
      match output with
      | Tcp.Emit seg ->
          side.emitted <- side.emitted + 1;
          perform peer side (Tcp.step peer.ep (Tcp.Seg_in seg))
      | Tcp.Deliver { payload; bytes } ->
          side.delivered <- side.delivered @ [ (payload, bytes) ]
      | Tcp.Set_timer { id; after } -> side.timers <- side.timers @ [ (id, after) ]
      | Tcp.Connected -> side.connected <- true
      | Tcp.Closed -> side.closed <- true)
    outputs

let fire_timers side peer =
  let timers = side.timers in
  side.timers <- [];
  List.iter (fun (id, _) -> perform side peer (Tcp.step side.ep (Tcp.Timer_fired id))) timers

(* Fire delayed-ACK timers on both sides until the connection quiesces. *)
let settle a b =
  let rec loop n =
    if n > 0 && (a.timers <> [] || b.timers <> []) then begin
      fire_timers a b;
      fire_timers b a;
      loop (n - 1)
    end
  in
  loop 100

let connect ?(config = Tcp.default_config) () =
  let client = make_side ~config ~conn:1 ~initiator:true in
  let server = make_side ~config ~conn:1 ~initiator:false in
  perform client server (Tcp.step client.ep Tcp.Open);
  (client, server)

let test_tcp_handshake () =
  let client, server = connect () in
  Alcotest.(check bool) "client connected" true client.connected;
  Alcotest.(check bool) "server connected" true server.connected

let test_tcp_small_message () =
  let client, server = connect () in
  perform client server
    (Tcp.step client.ep (Tcp.Send_msg { payload = Blob 7; bytes = 100 }));
  (match server.delivered with
  | [ (Blob 7, 100) ] -> ()
  | _ -> Alcotest.fail "message must arrive once with exact size");
  Alcotest.(check int) "bytes delivered" 100 (Tcp.bytes_delivered server.ep)

let test_tcp_large_message_segments () =
  let client, server = connect () in
  let size = 100_000 in
  perform client server
    (Tcp.step client.ep (Tcp.Send_msg { payload = Blob 1; bytes = size }));
  settle client server;
  (match server.delivered with
  | [ (Blob 1, n) ] -> Alcotest.(check int) "full size" size n
  | _ -> Alcotest.fail "one message expected");
  Alcotest.(check int) "acked back to sender" size (Tcp.bytes_acked client.ep)

let test_tcp_many_messages_in_order () =
  let client, server = connect () in
  for i = 1 to 20 do
    perform client server
      (Tcp.step client.ep (Tcp.Send_msg { payload = Blob i; bytes = 500 + i }))
  done;
  settle client server;
  let got = List.map (fun (p, b) -> (p, b)) server.delivered in
  let expected = List.init 20 (fun i -> (Blob (i + 1), 501 + i)) in
  if got <> expected then Alcotest.fail "messages must arrive in order with sizes"

let test_tcp_bidirectional () =
  let client, server = connect () in
  perform client server
    (Tcp.step client.ep (Tcp.Send_msg { payload = Blob 1; bytes = 10 }));
  perform server client
    (Tcp.step server.ep (Tcp.Send_msg { payload = Blob 2; bytes = 20 }));
  (match (server.delivered, client.delivered) with
  | [ (Blob 1, 10) ], [ (Blob 2, 20) ] -> ()
  | _ -> Alcotest.fail "both directions deliver")

let test_tcp_close () =
  let client, server = connect () in
  perform client server
    (Tcp.step client.ep (Tcp.Send_msg { payload = Blob 1; bytes = 10 }));
  settle client server;
  perform client server (Tcp.step client.ep Tcp.Close);
  Alcotest.(check bool) "client closed" true client.closed;
  Alcotest.(check bool) "server closed" true server.closed

let test_tcp_nagle_coalesces () =
  let config = { Tcp.default_config with Tcp.nagle = true } in
  let client, server = connect ~config () in
  let before = client.emitted in
  (* First small message goes out; the next two are held behind the unacked
     data (the server's delayed-ACK timer has not fired). *)
  List.iter
    (fun i ->
      perform client server
        (Tcp.step client.ep (Tcp.Send_msg { payload = Blob i; bytes = 50 })))
    [ 1; 2; 3 ];
  let data_emitted = client.emitted - before in
  Alcotest.(check int) "only the first flies" 1 data_emitted;
  Alcotest.(check int) "one delivery so far" 1 (List.length server.delivered);
  (* The server's delayed ACK releases the second message; the third waits
     behind it (classic Nagle / delayed-ACK interplay), so quiescing the
     timers drains everything. *)
  fire_timers server client;
  Alcotest.(check int) "one released per ack" 2 (List.length server.delivered);
  settle client server;
  Alcotest.(check int) "all drained" 3 (List.length server.delivered)

let test_tcp_ooo_reassembly () =
  (* Feed data segments to a server endpoint out of order directly. *)
  let config = Tcp.default_config in
  let server = make_side ~config ~conn:1 ~initiator:false in
  let sink = make_side ~config ~conn:1 ~initiator:true in
  (* Handshake manually: Syn, then Ack. *)
  perform server sink (Tcp.step server.ep (Tcp.Seg_in
    { Tcp.conn = 1; kind = Tcp.Syn; seq = 0; len = 0; ack = 0; msg_end = None }));
  perform server sink (Tcp.step server.ep (Tcp.Seg_in
    { Tcp.conn = 1; kind = Tcp.Ack; seq = 0; len = 0; ack = 0; msg_end = None }));
  let seg ~seq ~len ~msg_end =
    { Tcp.conn = 1; kind = Tcp.Data; seq; len; ack = 0; msg_end }
  in
  (* Two segments delivered in reverse order; message ends at byte 200. *)
  perform server sink (Tcp.step server.ep (Tcp.Seg_in (seg ~seq:100 ~len:100 ~msg_end:(Some (Blob 5)))));
  Alcotest.(check int) "held until gap fills" 0 (List.length server.delivered);
  perform server sink (Tcp.step server.ep (Tcp.Seg_in (seg ~seq:0 ~len:100 ~msg_end:None)));
  match server.delivered with
  | [ (Blob 5, 200) ] -> ()
  | _ -> Alcotest.fail "reassembled message expected"

let prop_tcp_random_message_sizes =
  QCheck.Test.make ~name:"any message sequence arrives intact and in order"
    ~count:60
    QCheck.(list_of_size Gen.(1 -- 15) (int_range 1 20_000))
    (fun sizes ->
      let client, server = connect () in
      List.iteri
        (fun i bytes ->
          perform client server
            (Tcp.step client.ep (Tcp.Send_msg { payload = Blob i; bytes })))
        sizes;
      settle client server;
      let got = server.delivered in
      List.length got = List.length sizes
      && List.for_all2
           (fun (p, b) (i, expected) -> p = Blob i && b = expected)
           got
           (List.mapi (fun i s -> (i, s)) sizes))

(* --- Services end-to-end ----------------------------------------------------- *)

let test_http_small_download () =
  let cloud = Cloud.create ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(Sw_apps.Http.server ()) in
  let client = Cloud.add_host cloud () in
  let tcp = Sw_apps.Tcp_host.attach client () in
  let result = ref nan in
  Sw_apps.Http.download tcp ~dst:(Cloud.vm_address d) ~file:1 ~size:10_000
    ~on_done:(fun ~elapsed_ms -> result := elapsed_ms)
    ();
  Cloud.run cloud ~until:(Time.s 10);
  if Float.is_nan !result then Alcotest.fail "download did not complete";
  Alcotest.(check int) "no divergences" 0 (Cloud.divergences d)

let test_udp_fetch_with_loss () =
  (* Drop 20% of server->client datagrams; NAK recovery must still complete
     the transfer. *)
  let cloud = Cloud.create ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(Sw_apps.Udp_file.server ()) in
  let client = Cloud.add_host cloud () in
  Sw_net.Network.set_link (Cloud.network cloud) ~src:(Cloud.vm_address d)
    ~dst:(Host.address client)
    { Sw_net.Network.wan with Sw_net.Network.loss = 0.2 };
  let result = ref nan and naks = ref 0 in
  Sw_apps.Udp_file.fetch client ~dst:(Cloud.vm_address d) ~file:1 ~size:200_000
    ~on_done:(fun ~elapsed_ms ~naks:n ->
      result := elapsed_ms;
      naks := n)
    ();
  Cloud.run cloud ~until:(Time.s 60);
  if Float.is_nan !result then Alcotest.fail "lossy fetch did not complete";
  if !naks = 0 then Alcotest.fail "some NAKs expected under 20% loss"

let test_nfs_ops_complete () =
  let cloud = Cloud.create ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(Sw_apps.Nfs.server ()) in
  let client = Cloud.add_host cloud () in
  let tcp = Sw_apps.Tcp_host.attach client ~config:Sw_apps.Nfs.client_tcp_config () in
  let get =
    Sw_apps.Nfs.run_client tcp ~dst:(Cloud.vm_address d) ~rate_per_s:100. ~procs:5
      ~ops:100 ()
  in
  Cloud.run cloud ~until:(Time.s 10);
  let stats = get () in
  Alcotest.(check int) "all issued" 100 stats.Sw_apps.Nfs.issued;
  Alcotest.(check int) "all completed" 100 stats.Sw_apps.Nfs.completed;
  Array.iter
    (fun l -> if l <= 0. then Alcotest.fail "non-positive latency")
    stats.Sw_apps.Nfs.latencies_ms

let test_nfs_mix_probabilities () =
  (* The op mix must sum to 1 and the picker must roughly respect it. *)
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. Sw_apps.Nfs.paper_mix in
  Alcotest.(check (float 1e-6)) "mix sums to 1" 1.0 total

let test_parsec_app_phases () =
  let sends = ref 0 and disk_reqs = ref 0 in
  let profile =
    { Sw_apps.Parsec.ferret with Sw_apps.Parsec.io_count = 5; compute_branches = 50_000L }
  in
  let app = Sw_apps.Parsec.app profile ~collector:(Sw_net.Address.Host 0) () in
  let sinks =
    {
      Sw_vm.Guest.send = (fun ~seq:_ ~instr:_ ~dst:_ ~size:_ ~payload:_ -> incr sends);
      disk = (fun ~kind:_ ~bytes:_ ~sequential:_ ~tag:_ ~instr:_ -> incr disk_reqs);
      dma = (fun ~bytes:_ ~tag:_ ~instr:_ -> ());
    }
  in
  let vt = Sw_vm.Virtual_time.create ~start:Time.zero ~slope_ns_per_branch:1.0 () in
  let guest = Sw_vm.Guest.create ~app ~vt ~sinks () in
  Sw_vm.Guest.boot guest;
  for tag = 0 to 4 do
    Sw_vm.Guest.run_branches guest 100_000L;
    Sw_vm.Guest.inject guest (App.Disk_done { tag })
  done;
  Sw_vm.Guest.run_branches guest 100_000L;
  Alcotest.(check int) "five disk requests" 5 !disk_reqs;
  Alcotest.(check int) "job-done sent" 1 !sends

let test_parsec_profiles_interrupt_counts () =
  (* Fig. 7(b)'s counts are baked into the profiles. *)
  List.iter2
    (fun (p : Sw_apps.Parsec.profile) expected ->
      Alcotest.(check int) p.Sw_apps.Parsec.name expected p.Sw_apps.Parsec.io_count)
    Sw_apps.Parsec.all_profiles [ 31; 38; 183; 293; 27 ]

let test_http_concurrent_clients () =
  (* Three clients download different sizes from the same replicated server
     simultaneously: the server's TCP adapter must keep the connections
     apart and every download must complete. Concurrent first-chunk reads
     queue at the disk, so delta_d is provisioned for the queueing depth
     (the paper sizes it from maximum *observed* access times). *)
  let config = { Sw_vmm.Config.default with Sw_vmm.Config.delta_d = Time.ms 30 } in
  let cloud = Cloud.create ~config ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(Sw_apps.Http.server ()) in
  let done_sizes = ref [] in
  List.iteri
    (fun i size ->
      let client = Cloud.add_host cloud () in
      let tcp = Sw_apps.Tcp_host.attach client () in
      Sw_apps.Http.download tcp ~dst:(Cloud.vm_address d) ~file:i ~size
        ~on_done:(fun ~elapsed_ms:_ -> done_sizes := size :: !done_sizes)
        ())
    [ 10_000; 50_000; 200_000 ];
  Cloud.run cloud ~until:(Time.s 20);
  Alcotest.(check (list int))
    "all three downloads complete"
    [ 10_000; 50_000; 200_000 ]
    (List.sort compare !done_sizes);
  Alcotest.(check int) "no divergences" 0 (Cloud.divergences d)

(* A guest echo service over TCP, for end-to-end stream testing. *)
type Sw_net.Packet.payload += Echo_req of int | Echo_rep of int

let tcp_echo_server : Sw_vm.App.factory =
 fun () ->
  let tcpd = Sw_apps.Tcp_guest.create () in
  {
    App.handle =
      (fun ~virt_now:_ event ->
        match Sw_apps.Tcp_guest.handle tcpd event with
        | Some (conn_events, actions) ->
            actions
            @ List.concat_map
                (function
                  | Sw_apps.Tcp_guest.Msg { key; payload = Echo_req n; bytes } ->
                      Sw_apps.Tcp_guest.send tcpd key ~payload:(Echo_rep n) ~bytes
                  | _ -> [])
                conn_events
        | None -> []);
  }

let prop_guest_tcp_echo_roundtrip =
  QCheck.Test.make
    ~name:"guest TCP echo returns every message intact over the cloud" ~count:8
    QCheck.(list_of_size Gen.(1 -- 8) (int_range 1 30_000))
    (fun sizes ->
      let cloud = Cloud.create ~machines:3 () in
      let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:tcp_echo_server in
      let client = Cloud.add_host cloud () in
      let tcp = Sw_apps.Tcp_host.attach client () in
      let got = ref [] in
      let conn = ref None in
      let c =
        Sw_apps.Tcp_host.connect tcp ~dst:(Cloud.vm_address d)
          ~on_connected:(fun () ->
            match !conn with
            | Some c ->
                List.iteri
                  (fun i bytes ->
                    Sw_apps.Tcp_host.send c ~payload:(Echo_req i) ~bytes)
                  sizes
            | None -> ())
          ~on_msg:(fun ~payload ~bytes ->
            match payload with
            | Echo_rep n -> got := (n, bytes) :: !got
            | _ -> ())
          ()
      in
      conn := Some c;
      Cloud.run cloud ~until:(Time.s 30);
      List.rev !got = List.mapi (fun i s -> (i, s)) sizes)

let () =
  Alcotest.run "sw_apps"
    [
      ( "tcp",
        [
          Alcotest.test_case "handshake" `Quick test_tcp_handshake;
          Alcotest.test_case "small message" `Quick test_tcp_small_message;
          Alcotest.test_case "large message" `Quick test_tcp_large_message_segments;
          Alcotest.test_case "in-order stream" `Quick test_tcp_many_messages_in_order;
          Alcotest.test_case "bidirectional" `Quick test_tcp_bidirectional;
          Alcotest.test_case "close" `Quick test_tcp_close;
          Alcotest.test_case "nagle" `Quick test_tcp_nagle_coalesces;
          Alcotest.test_case "out-of-order reassembly" `Quick test_tcp_ooo_reassembly;
          QCheck_alcotest.to_alcotest prop_tcp_random_message_sizes;
        ] );
      ( "services",
        [
          Alcotest.test_case "http download" `Quick test_http_small_download;
          Alcotest.test_case "http concurrent clients" `Quick
            test_http_concurrent_clients;
          QCheck_alcotest.to_alcotest prop_guest_tcp_echo_roundtrip;
          Alcotest.test_case "udp with loss + naks" `Quick test_udp_fetch_with_loss;
          Alcotest.test_case "nfs ops complete" `Quick test_nfs_ops_complete;
          Alcotest.test_case "nfs mix" `Quick test_nfs_mix_probabilities;
          Alcotest.test_case "parsec phases" `Quick test_parsec_app_phases;
          Alcotest.test_case "parsec interrupt counts" `Quick
            test_parsec_profiles_interrupt_counts;
        ] );
    ]
