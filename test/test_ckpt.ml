(* sw_ckpt: the checkpoint/restore determinism contract (restore-then-run
   is byte-identical to run-straight-through, per shard layout and across
   them), image framing hardening (truncation, corruption, version skew),
   crash-recovery of the store and the soak driver, and divergence
   bisection over two checkpoint timelines. Plus the satellites: PRNG
   stream state round-trips and the trace ring's dropped-counter mirror. *)

module Time = Sw_sim.Time
module Prng = Sw_sim.Prng
module Graft = Sw_sim.Graft
module Cloud = Stopwatch.Cloud
module Dsl = Sw_workload.Dsl
module Run = Sw_workload.Run
module Export = Sw_obs.Export
module Snapshot = Sw_obs.Snapshot
module Trace = Sw_obs.Trace
module Event = Sw_obs.Event
module Registry = Sw_obs.Registry
module Image = Sw_ckpt.Image
module Store = Sw_ckpt.Store
module Soak = Sw_ckpt.Soak
module Bisect = Sw_ckpt.Bisect

(* dune runtest runs in _build/default/test; dune exec from the repo root. *)
let scn file =
  let candidates =
    [ Filename.concat "../examples" file; Filename.concat "examples" file ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Filename.concat "../examples" file

let load file =
  match Dsl.load_file (scn file) with
  | Ok t -> t
  | Error e -> Alcotest.failf "%s failed to load: %s" file e

let small_workload () =
  match load "diurnal.scn" with
  | { Dsl.kind = Dsl.Workload w; _ } ->
      { w with Dsl.duration = Time.ms 400; load_multipliers = [ 1. ] }
  | _ -> Alcotest.fail "diurnal.scn is not a workload"

let slowdown ~at_ms ~factor =
  {
    Sw_fault.Schedule.at = Time.ms at_ms;
    span = Time.ms 150;
    fault = Sw_fault.Fault.Machine_slowdown { machine = 0; factor };
  }

(* Everything a result says, as one string: equal bytes = equal runs. *)
let result_bytes (r : Run.result) =
  Printf.sprintf "issued=%d completed=%d hits=%d misses=%d p50=%h p99=%h %s"
    r.Run.issued r.Run.completed r.Run.hits r.Run.misses r.Run.p50_ms
    r.Run.p99_ms
    (Export.to_json_string r.Run.metrics)

let restore_exn image =
  match Cloud.restore image with
  | Ok pair -> pair
  | Error e ->
      Alcotest.failf "restore failed: %s"
        (Format.asprintf "%a" Cloud.pp_restore_error e)

(* --- checkpoint/restore determinism --------------------------------------- *)

(* One prepared scenario, three executions: straight through; paused at
   [frac] of the horizon and continued; and restored from the pause-point
   checkpoint in a fresh heap. All three must agree to the byte. *)
let three_way ?shards w ~frac =
  let straight =
    let h = Run.prepare ?shards w in
    Cloud.run h.Run.cloud ~until:h.Run.until;
    result_bytes (h.Run.finish ())
  in
  let h = Run.prepare ?shards w in
  let mid = Time.scale h.Run.until frac in
  Cloud.run h.Run.cloud ~until:mid;
  let image = Cloud.checkpoint h.Run.cloud ~extra:h in
  Cloud.run h.Run.cloud ~until:h.Run.until;
  let paused = result_bytes (h.Run.finish ()) in
  let _cloud, (h' : Run.handle) = restore_exn image in
  Cloud.run h'.Run.cloud ~until:h'.Run.until;
  let restored = result_bytes (h'.Run.finish ()) in
  (straight, paused, restored)

let prop_restore_roundtrip =
  QCheck.Test.make ~count:5
    ~name:"restore-then-run = run-straight-through (single shard)"
    QCheck.(triple int64 (float_range 0.2 0.8) bool)
    (fun (seed, frac, with_fault) ->
      let w = small_workload () in
      let w =
        {
          w with
          Dsl.seed;
          faults = (if with_fault then [ slowdown ~at_ms:150 ~factor:2. ] else []);
        }
      in
      let straight, paused, restored = three_way w ~frac in
      straight = paused && straight = restored)

let contract_bytes metrics =
  Export.to_json_string
    (Snapshot.filter metrics ~f:(fun name ->
         not (String.length name >= 4 && String.sub name 0 4 = "sim.")))

let datacenter_workload () =
  let w = small_workload () in
  {
    w with
    Dsl.duration = Time.ms 300;
    topology =
      Some
        {
          Dsl.hosts = 12;
          shards = 1;
          east_west_rate_per_s = 40.;
          east_west_stride = 1;
          partition = Dsl.Contiguous;
          replica_link_us = None;
          quantum_us = None;
        };
  }

(* The sharded conductor (engines, cross-shard inboxes, lookahead cursor)
   checkpoints too: a 4-shard run restored mid-window finishes exactly like
   the uninterrupted one, and still matches the 1-shard run outside
   [sim.*]. *)
let test_sharded_roundtrip () =
  let w = datacenter_workload () in
  let straight4, paused4, restored4 = three_way ~shards:4 w ~frac:0.5 in
  Alcotest.(check string) "pause/continue, 4 shards" straight4 paused4;
  Alcotest.(check string) "restore-then-run, 4 shards" straight4 restored4;
  let h1 = Run.prepare ~shards:1 w in
  Cloud.run h1.Run.cloud ~until:h1.Run.until;
  let r1 = h1.Run.finish () in
  let _cloud, (h4 : Run.handle) =
    let h = Run.prepare ~shards:4 w in
    let mid = Time.scale h.Run.until 0.5 in
    Cloud.run h.Run.cloud ~until:mid;
    restore_exn (Cloud.checkpoint h.Run.cloud ~extra:h)
  in
  Cloud.run h4.Run.cloud ~until:h4.Run.until;
  let r4 = h4.Run.finish () in
  Alcotest.(check string) "restored 4-shard = straight 1-shard (non-sim.*)"
    (contract_bytes r1.Run.metrics)
    (contract_bytes r4.Run.metrics)

(* Extension-constructor slots lose physical identity through Marshal;
   Graft.repair points them back at this process's live slots, which is
   what makes restored payloads pattern-match again. *)
let test_graft_repairs_slots () =
  let bytes = Marshal.to_string Sw_net.Packet.Empty [ Marshal.Closures ] in
  let boxed = ref (Marshal.from_string bytes 0 : Sw_net.Packet.payload) in
  (match Graft.repair (Obj.repr boxed) with
  | Ok stats ->
      Alcotest.(check bool) "patched a slot" true (stats.Graft.patched >= 1)
  | Error names ->
      Alcotest.failf "unregistered slots: %s" (String.concat ", " names));
  match !boxed with
  | Sw_net.Packet.Empty -> ()
  | _ -> Alcotest.fail "repaired payload does not match Empty"

(* --- image framing --------------------------------------------------------- *)

let meta ~index ~sim_ns =
  {
    Image.scenario = "test-scenario";
    seed = 7L;
    shards = 1;
    index;
    sim_ns;
    fingerprint = "fp";
    payload_digest = Digest.string "";
    payload_len = 0;
  }

let write_exn path ~payload =
  match Image.write ~path (meta ~index:0 ~sim_ns:5L) ~payload with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write failed: %s" (Image.error_to_string e)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let expect_read_error path check =
  match Image.read ~path with
  | Ok _ -> Alcotest.failf "%s unexpectedly read back" path
  | Error e ->
      if not (check e) then
        Alcotest.failf "%s: wrong error: %s" path (Image.error_to_string e)

let test_image_roundtrip () =
  let payload = String.init 4096 (fun i -> Char.chr (i * 31 mod 256)) in
  write_exn "img_ok.img" ~payload;
  match Image.read ~path:"img_ok.img" with
  | Error e -> Alcotest.failf "read failed: %s" (Image.error_to_string e)
  | Ok (m, p) ->
      Alcotest.(check string) "payload" payload p;
      Alcotest.(check int) "payload_len" (String.length payload) m.Image.payload_len;
      Alcotest.(check string) "scenario" "test-scenario" m.Image.scenario

let test_image_truncated () =
  let payload = String.make 2048 'x' in
  write_exn "img_trunc.img" ~payload;
  let bytes = read_file "img_trunc.img" in
  (* Cut inside the payload, inside the header, and inside the preamble. *)
  List.iter
    (fun keep ->
      write_file "img_trunc.img" (String.sub bytes 0 keep);
      expect_read_error "img_trunc.img" (function
        | Image.Truncated -> true
        | _ -> false))
    [ String.length bytes - 100; 40; 3 ]

let test_image_corrupt () =
  let payload = String.make 2048 'x' in
  write_exn "img_corrupt.img" ~payload;
  let bytes = Bytes.of_string (read_file "img_corrupt.img") in
  let last = Bytes.length bytes - 1 in
  Bytes.set bytes last (Char.chr (Char.code (Bytes.get bytes last) lxor 1));
  write_file "img_corrupt.img" (Bytes.to_string bytes);
  expect_read_error "img_corrupt.img" (function
    | Image.Corrupt _ -> true
    | _ -> false)

let test_image_version_and_magic () =
  write_exn "img_vers.img" ~payload:"p";
  let bytes = read_file "img_vers.img" in
  (* Bytes 6-7 are the two ASCII version digits. *)
  let bumped = Bytes.of_string bytes in
  Bytes.blit_string "99" 0 bumped 6 2;
  write_file "img_vers.img" (Bytes.to_string bumped);
  expect_read_error "img_vers.img" (function
    | Image.Version_mismatch { found = 99; expected = 1 } -> true
    | _ -> false);
  write_file "img_vers.img" ("XXXXXX" ^ String.sub bytes 6 (String.length bytes - 6));
  expect_read_error "img_vers.img" (function
    | Image.Bad_magic -> true
    | _ -> false)

(* A crash mid-write must never cost the timeline: writes go to a temp
   file first, and recovery walks past any half-written newer image. *)
let test_store_crash_mid_write () =
  let dir = "store_crash" in
  (match Store.ensure_dir dir with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ensure_dir: %s" (Image.error_to_string e));
  let payload = String.make 512 'a' in
  (match
     Image.write ~path:(Store.path dir ~index:0) (meta ~index:0 ~sim_ns:5L)
       ~payload
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %s" (Image.error_to_string e));
  (* Simulate a crash mid-write of the next image: valid preamble, cut
     body. *)
  let good = read_file (Store.path dir ~index:0) in
  write_file (Store.path dir ~index:1)
    (String.sub good 0 (String.length good - 200));
  (* And a stray temp file from the same crash. *)
  write_file (Store.path dir ~index:2 ^ ".tmp") "half";
  match Store.latest_valid dir with
  | None -> Alcotest.fail "prior image not recovered"
  | Some (entry, recovered, rejected) ->
      Alcotest.(check int) "recovered index" 0 entry.Store.index;
      Alcotest.(check string) "recovered payload" payload recovered;
      Alcotest.(check int) "newer image rejected" 1 (List.length rejected)

(* --- soak ------------------------------------------------------------------ *)

let soak_scenario ?(faults = []) ~name ~seed () =
  let w = small_workload () in
  { Dsl.name; kind = Dsl.Workload { w with Dsl.seed; faults } }

let run_soak ?kill_after ~dir scenario =
  Soak.run ~scenario ~dir ~every:(Time.ms 100) ?kill_after ()

let soak_exn ?kill_after ~dir scenario =
  match run_soak ?kill_after ~dir scenario with
  | Ok o -> o
  | Error e -> Alcotest.failf "soak: %s" (Format.asprintf "%a" Soak.pp_error e)

(* Kill the soak after every single checkpoint; the chain of resumed runs
   must end with a report byte-identical to one uninterrupted run. *)
let test_soak_survives_kills () =
  let scenario = soak_scenario ~name:"soak-kill" ~seed:11L () in
  let uninterrupted = soak_exn ~dir:"soak_straight" scenario in
  let rec crash_loop n =
    if n > 50 then Alcotest.fail "soak never finished"
    else
      match run_soak ~kill_after:1 ~dir:"soak_crashed" scenario with
      | exception Soak.Killed _ -> crash_loop (n + 1)
      | Ok o -> o
      | Error e ->
          Alcotest.failf "soak: %s" (Format.asprintf "%a" Soak.pp_error e)
  in
  let survived = crash_loop 0 in
  Alcotest.(check bool) "actually resumed" true
    (survived.Soak.resumed_from <> None);
  Alcotest.(check string) "report bytes"
    (result_bytes uninterrupted.Soak.result)
    (result_bytes survived.Soak.result);
  Alcotest.(check int64) "same horizon" uninterrupted.Soak.sim_ns
    survived.Soak.sim_ns

(* --- warm-start cache ------------------------------------------------------ *)

(* First use builds and checkpoints the prepared t=0 cloud; the second
   restores it. Both runs — and a cold build that never touched the cache
   — must produce the same report bytes, and a corrupted image silently
   falls back to a rebuild. *)
let test_warm_build_then_restore () =
  let w = datacenter_workload () in
  let dir = "warm_cache" in
  let key = "warm-test:shards=2" in
  let builds = ref 0 in
  let build () =
    incr builds;
    Run.prepare ~shards:2 w
  in
  let go () =
    match Sw_ckpt.Warm.load_or_build ~dir ~key ~seed:w.Dsl.seed ~shards:2 ~build with
    | Error e -> Alcotest.failf "warm: %s" e
    | Ok (h, status) ->
        Cloud.run h.Run.cloud ~until:h.Run.until;
        (contract_bytes (h.Run.finish ()).Run.metrics, status)
  in
  let bytes_built, s1 = go () in
  let bytes_restored, s2 = go () in
  Alcotest.(check bool) "first use builds" true (s1 = Sw_ckpt.Warm.Built);
  Alcotest.(check bool) "second use restores" true (s2 = Sw_ckpt.Warm.Restored);
  Alcotest.(check int) "built exactly once" 1 !builds;
  let cold =
    let h = Run.prepare ~shards:2 w in
    Cloud.run h.Run.cloud ~until:h.Run.until;
    contract_bytes (h.Run.finish ()).Run.metrics
  in
  Alcotest.(check string) "built-and-run = cold" cold bytes_built;
  Alcotest.(check string) "restored-and-run = cold" cold bytes_restored;
  (* A flipped bit in the image must cost a rebuild, never a wrong run. *)
  let path = Sw_ckpt.Warm.image_path ~dir ~key in
  let img = read_file path in
  write_file path (String.sub img 0 (String.length img - 64));
  let bytes_again, s3 = go () in
  Alcotest.(check bool) "corrupt image rebuilt" true (s3 = Sw_ckpt.Warm.Built);
  Alcotest.(check int) "rebuild counted" 2 !builds;
  Alcotest.(check string) "rebuilt run = cold" cold bytes_again

(* Resuming over a directory seeded by a different scenario is refused —
   never silently replayed. *)
let test_soak_wrong_scenario () =
  let a = soak_scenario ~name:"soak-owner" ~seed:1L () in
  let b = soak_scenario ~name:"soak-owner" ~seed:2L () in
  ignore (soak_exn ~dir:"soak_owned" a);
  match run_soak ~dir:"soak_owned" b with
  | Error (Soak.Wrong_scenario _) -> ()
  | Ok _ -> Alcotest.fail "foreign scenario resumed"
  | Error e ->
      Alcotest.failf "wrong error: %s" (Format.asprintf "%a" Soak.pp_error e)

(* A corrupt newest image costs one interval, not the run: the soak falls
   back to the previous valid image and still finishes identically. *)
let test_soak_falls_back_past_corrupt_image () =
  let scenario = soak_scenario ~name:"soak-corrupt" ~seed:3L () in
  let reference = soak_exn ~dir:"soak_ref" scenario in
  (match run_soak ~kill_after:3 ~dir:"soak_cut" scenario with
  | exception Soak.Killed _ -> ()
  | _ -> Alcotest.fail "kill_after did not fire");
  let newest = Store.path "soak_cut" ~index:2 in
  let bytes = read_file newest in
  write_file newest (String.sub bytes 0 (String.length bytes - 64));
  let resumed = soak_exn ~dir:"soak_cut" scenario in
  Alcotest.(check (option int)) "resumed from the previous image" (Some 1)
    resumed.Soak.resumed_from;
  Alcotest.(check int) "the corrupt image was reported" 1
    resumed.Soak.images_skipped;
  Alcotest.(check string) "report bytes"
    (result_bytes reference.Soak.result)
    (result_bytes resumed.Soak.result)

(* --- bisect ---------------------------------------------------------------- *)

(* Two runs identical until t=250ms, where one side's planted fault is a
   no-op (factor 1.0) and the other's a real slowdown: bisection must name
   the first post-fault checkpoint, the metrics that moved, and a first
   divergent trace event inside the window. *)
let test_bisect_finds_planted_divergence () =
  let mk factor name =
    soak_scenario ~name ~seed:5L
      ~faults:[ slowdown ~at_ms:250 ~factor ] ()
  in
  ignore (soak_exn ~dir:"bisect_a" (mk 1.0 "bisect"));
  ignore (soak_exn ~dir:"bisect_b" (mk 2.0 "bisect"));
  match Bisect.first_divergence ~a:"bisect_a" ~b:"bisect_b" with
  | Error e ->
      Alcotest.failf "bisect: %s" (Format.asprintf "%a" Bisect.pp_error e)
  | Ok d ->
      (* Grid every 100ms; the fault lands at 250ms, so checkpoints 0-1
         agree and #2 (t=300ms) is the first divergent one. *)
      Alcotest.(check int) "first divergent checkpoint" 2 d.Bisect.index;
      Alcotest.(check int64) "at the grid instant" 300_000_000L d.Bisect.sim_ns;
      Alcotest.(check (option int)) "last agreement" (Some 1)
        d.Bisect.last_common;
      Alcotest.(check bool) "metrics moved" true (d.Bisect.metric_diff <> []);
      (match d.Bisect.first_event with
      | None -> Alcotest.fail "divergent window was not replayed"
      | Some (_, ea, eb) ->
          Alcotest.(check bool) "both sides produced an event" true
            (ea <> None && eb <> None));
      (* The printed report renders without raising. *)
      ignore (Format.asprintf "%a" Bisect.pp_divergence d)

let test_bisect_agreement_is_not_divergence () =
  let scenario = soak_scenario ~name:"bisect-same" ~seed:9L () in
  ignore (soak_exn ~dir:"bisect_same_a" scenario);
  ignore (soak_exn ~dir:"bisect_same_b" scenario);
  match Bisect.first_divergence ~a:"bisect_same_a" ~b:"bisect_same_b" with
  | Error (Bisect.No_divergence { compared }) ->
      Alcotest.(check bool) "compared several" true (compared > 2)
  | Ok _ -> Alcotest.fail "identical runs reported divergent"
  | Error e ->
      Alcotest.failf "bisect: %s" (Format.asprintf "%a" Bisect.pp_error e)

(* --- satellites ------------------------------------------------------------ *)

let test_prng_state_roundtrip () =
  let g = Prng.create 42L in
  for _ = 1 to 17 do
    ignore (Prng.next_int64 g)
  done;
  let st = Prng.export g in
  let ahead = List.init 5 (fun _ -> Prng.next_int64 g) in
  let replayed =
    let g' = Prng.import st in
    List.init 5 (fun _ -> Prng.next_int64 g')
  in
  Alcotest.(check (list int64)) "import replays the stream" ahead replayed;
  let text = Prng.state_to_string st in
  (match Prng.state_of_string text with
  | Error e -> Alcotest.failf "state_of_string: %s" e
  | Ok st' ->
      Alcotest.(check string) "textual state round-trips" text
        (Prng.state_to_string st'));
  match Prng.state_of_string "not-a-state" with
  | Ok _ -> Alcotest.fail "garbage state accepted"
  | Error _ -> ()

let test_trace_dropped_mirror () =
  let reg = Registry.create () in
  let tr = Trace.create ~capacity:4 ~metrics:reg () in
  Trace.enable tr;
  for i = 1 to 10 do
    Trace.emit tr ~at_ns:(Int64.of_int i)
      (Event.Message { label = "m"; text = "x" })
  done;
  let mirror () = Snapshot.counter (Registry.snapshot reg) "trace.dropped" in
  Alcotest.(check int) "ring counted drops" 6 (Trace.dropped tr);
  Alcotest.(check int) "registry mirror agrees" 6 (mirror ());
  Trace.clear tr;
  Alcotest.(check int) "clear zeroes the ring" 0 (Trace.dropped tr);
  Alcotest.(check int) "clear zeroes the mirror" 0 (mirror ())

let () =
  Alcotest.run "sw_ckpt"
    [
      ( "roundtrip",
        [
          QCheck_alcotest.to_alcotest prop_restore_roundtrip;
          Alcotest.test_case "sharded restore (4 shards, vs 1)" `Slow
            test_sharded_roundtrip;
          Alcotest.test_case "graft repairs marshalled slots" `Quick
            test_graft_repairs_slots;
        ] );
      ( "image",
        [
          Alcotest.test_case "write/read round-trip" `Quick test_image_roundtrip;
          Alcotest.test_case "truncation detected" `Quick test_image_truncated;
          Alcotest.test_case "corruption detected" `Quick test_image_corrupt;
          Alcotest.test_case "version and magic checked" `Quick
            test_image_version_and_magic;
          Alcotest.test_case "crash mid-write leaves prior image valid" `Quick
            test_store_crash_mid_write;
        ] );
      ( "warm",
        [
          Alcotest.test_case "build, restore, corrupt fallback" `Slow
            test_warm_build_then_restore;
        ] );
      ( "soak",
        [
          Alcotest.test_case "survives a kill after every checkpoint" `Slow
            test_soak_survives_kills;
          Alcotest.test_case "refuses a foreign scenario's timeline" `Slow
            test_soak_wrong_scenario;
          Alcotest.test_case "falls back past a corrupt newest image" `Slow
            test_soak_falls_back_past_corrupt_image;
        ] );
      ( "bisect",
        [
          Alcotest.test_case "finds a planted divergence" `Slow
            test_bisect_finds_planted_divergence;
          Alcotest.test_case "agreement is not divergence" `Slow
            test_bisect_agreement_is_not_divergence;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "prng stream state round-trips" `Quick
            test_prng_state_roundtrip;
          Alcotest.test_case "trace dropped-counter mirror" `Quick
            test_trace_dropped_mirror;
        ] );
    ]
