(* Tests for the statistics library: special functions against reference
   values, distribution machinery, the order-statistics formula behind the
   paper's median analysis, KS distance (Theorems 3/4), and the chi-square
   distinguisher. *)

module Special = Sw_stats.Special
module Dist = Sw_stats.Dist
module Os = Sw_stats.Order_stats
module Ks = Sw_stats.Ks
module Chi = Sw_stats.Chi_square

let close ?(eps = 1e-6) name expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" name expected actual

(* --- Special functions -------------------------------------------------- *)

let test_log_gamma () =
  close "lgamma(1)" 0. (Special.log_gamma 1.);
  close "lgamma(2)" 0. (Special.log_gamma 2.);
  close "lgamma(5) = ln 24" (Float.log 24.) (Special.log_gamma 5.);
  close ~eps:1e-9 "lgamma(0.5) = ln sqrt(pi)"
    (0.5 *. Float.log Float.pi)
    (Special.log_gamma 0.5)

let test_gamma_p () =
  (* P(1, x) = 1 - e^-x *)
  close "P(1,1)" (1. -. Float.exp (-1.)) (Special.gamma_p 1. 1.);
  close "P(1,3)" (1. -. Float.exp (-3.)) (Special.gamma_p 1. 3.);
  (* chi-square with 2 df: cdf(x) = 1 - e^(-x/2), known value at x=4 *)
  close "chi2 df=2 at 4" (1. -. Float.exp (-2.)) (Special.gamma_p 1. 2.);
  close "P(a,0)" 0. (Special.gamma_p 3. 0.)

let test_erf () =
  close ~eps:1e-6 "erf(0)" 0. (Special.erf 0.);
  close ~eps:2e-7 "erf(1)" 0.8427007929 (Special.erf 1.);
  close ~eps:2e-7 "erf(-1)" (-0.8427007929) (Special.erf (-1.))

let test_choose () =
  close "C(5,2)" 10. (Special.choose 5 2);
  close "C(10,0)" 1. (Special.choose 10 0);
  close "C(10,10)" 1. (Special.choose 10 10);
  close "C(3,5)" 0. (Special.choose 3 5)

(* --- Dist ---------------------------------------------------------------- *)

let test_exponential_cdf () =
  let d = Dist.exponential ~rate:2. in
  close "cdf at 0" 0. (d.Dist.cdf 0.);
  close "cdf" (1. -. Float.exp (-2.)) (d.Dist.cdf 1.)

let test_uniform_quantile () =
  let d = Dist.uniform ~lo:2. ~hi:6. in
  close ~eps:1e-6 "q(0.5)" 4. (Dist.quantile d 0.5);
  close ~eps:1e-6 "q(0.25)" 3. (Dist.quantile d 0.25)

let test_mean_exponential () =
  let d = Dist.exponential ~rate:0.5 in
  close ~eps:0.01 "mean" 2. (Dist.mean d)

let test_add_means () =
  let d = Dist.add (Dist.exponential ~rate:1.) (Dist.uniform ~lo:0. ~hi:2.) in
  close ~eps:0.02 "mean of sum" 2. (Dist.mean d)

let test_of_samples () =
  let d = Dist.of_samples [| 1.; 2.; 3.; 4. |] in
  close "ecdf mid" 0.5 (d.Dist.cdf 2.);
  close "ecdf end" 1.0 (d.Dist.cdf 4.)

let test_constant_and_shift () =
  let c = Dist.constant 3. in
  close "below" 0. (c.Dist.cdf 2.9);
  close "at" 1. (c.Dist.cdf 3.);
  let sh = Dist.shift (Dist.exponential ~rate:1.) 10. in
  close "shifted cdf" (1. -. Float.exp (-1.)) (sh.Dist.cdf 11.);
  close ~eps:0.02 "shifted mean" 11. (Dist.mean sh)

(* --- Order statistics ---------------------------------------------------- *)

let test_median3_iid_formula () =
  (* For iid F: F_{2:3} = 3F^2 - 2F^3. *)
  let f = (Dist.exponential ~rate:1.).Dist.cdf in
  List.iter
    (fun x ->
      let p = f x in
      close ~eps:1e-12 "median3 iid"
        ((3. *. p *. p) -. (2. *. p *. p *. p))
        (Os.median3 f f f x))
    [ 0.1; 0.5; 1.0; 2.0; 5.0 ]

let test_cdf_rank_extremes () =
  (* Min of m: 1 - prod(1 - F_i); max of m: prod F_i. *)
  let f1 = (Dist.exponential ~rate:1.).Dist.cdf in
  let f2 = (Dist.uniform ~lo:0. ~hi:2.).Dist.cdf in
  let f3 = (Dist.exponential ~rate:0.5).Dist.cdf in
  let cdfs = [| f1; f2; f3 |] in
  List.iter
    (fun x ->
      let expected_max = f1 x *. f2 x *. f3 x in
      let expected_min = 1. -. ((1. -. f1 x) *. (1. -. f2 x) *. (1. -. f3 x)) in
      close ~eps:1e-9 "max" expected_max (Os.cdf_rank ~cdfs ~r:3 x);
      close ~eps:1e-9 "min" expected_min (Os.cdf_rank ~cdfs ~r:1 x))
    [ 0.3; 0.9; 1.7 ]

let test_cdf_rank_median_matches_median3 () =
  let f1 = (Dist.exponential ~rate:1.).Dist.cdf in
  let f2 = (Dist.uniform ~lo:0. ~hi:2.).Dist.cdf in
  let f3 = (Dist.exponential ~rate:0.5).Dist.cdf in
  List.iter
    (fun x ->
      close ~eps:1e-9 "r=2 of 3"
        (Os.median3 f1 f2 f3 x)
        (Os.cdf_rank ~cdfs:[| f1; f2; f3 |] ~r:2 x))
    [ 0.2; 0.8; 1.5; 3.0 ]

let test_sample_median () =
  close "median of 5" 3. (Os.sample_median [| 5.; 1.; 3.; 2.; 9. |]);
  Alcotest.check_raises "even count" (Invalid_argument "x") (fun () ->
      try ignore (Os.sample_median [| 1.; 2. |]) with
      | Invalid_argument _ -> raise (Invalid_argument "x"))

let test_median_int64_networks () =
  (* The branch networks against hand cases, duplicates included. *)
  Alcotest.(check int64) "median3" 2L (Os.median3_int64 3L 1L 2L);
  Alcotest.(check int64) "median3 dup" 5L (Os.median3_int64 5L 5L 1L);
  Alcotest.(check int64) "median5" 3L (Os.median5_int64 5L 1L 3L 2L 9L);
  Alcotest.(check int64) "median5 dup max" 4L (Os.median5_int64 9L 9L 4L 1L 2L);
  Alcotest.(check int64) "median5 all equal" 7L (Os.median5_int64 7L 7L 7L 7L 7L);
  Alcotest.(check int64) "length 1" 42L (Os.median_int64 [| 42L |]);
  Alcotest.check_raises "even count" (Invalid_argument "x") (fun () ->
      try ignore (Os.median_int64 [| 1L; 2L |]) with
      | Invalid_argument _ -> raise (Invalid_argument "x"))

let prop_median_int64_matches_sort =
  QCheck.Test.make ~name:"median_int64 equals sorted middle element" ~count:500
    QCheck.(pair (int_bound 4) (array_of_size (Gen.return 9) (int_bound 50)))
    (fun (half, raw) ->
      (* Odd lengths 1, 3, 5, 7, 9: the first three take the branch
         networks, the rest the sort fallback. *)
      let n = (2 * half) + 1 in
      let samples = Array.init n (fun i -> Int64.of_int raw.(i)) in
      let sorted = Array.copy samples in
      Array.sort Int64.compare sorted;
      Os.median_int64 samples = sorted.(n / 2))

let prop_rank_cdf_monotone_in_x =
  QCheck.Test.make ~name:"F_{r:m} is monotone and within [0,1]" ~count:100
    QCheck.(pair (int_range 1 5) (float_range 0.1 3.))
    (fun (r, rate) ->
      let cdfs =
        Array.init 5 (fun i ->
            (Dist.exponential ~rate:(rate +. float_of_int i)).Dist.cdf)
      in
      let f = Os.cdf_rank ~cdfs ~r in
      let xs = List.init 30 (fun i -> float_of_int i /. 5.) in
      let values = List.map f xs in
      List.for_all (fun v -> v >= 0. && v <= 1.) values
      &&
      let rec nondec = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && nondec rest
        | _ -> true
      in
      nondec values)

let prop_median_dist_sampler_agrees =
  QCheck.Test.make ~name:"median_dist sampler matches its CDF" ~count:10
    QCheck.(float_range 0.5 2.)
    (fun rate ->
      let e = Dist.exponential ~rate in
      let d = Os.median_dist [| e; e; e |] in
      let rng = Sw_sim.Prng.create 123L in
      let n = 20_000 in
      let x = 1.0 /. rate in
      let hits = ref 0 in
      for _ = 1 to n do
        if d.Dist.sample rng <= x then incr hits
      done;
      let empirical = float_of_int !hits /. float_of_int n in
      Float.abs (empirical -. d.Dist.cdf x) < 0.02)

(* --- Theorems 3 and 4 ---------------------------------------------------- *)

let test_theorem3_contraction () =
  let f1 = Dist.exponential ~rate:1. in
  let f1' = Dist.exponential ~rate:0.5 in
  let f2 = Dist.exponential ~rate:2. in
  let f3 = Dist.uniform ~lo:0. ~hi:3. in
  let d1 = Ks.distance ~lo:0. ~hi:15. f1.Dist.cdf f1'.Dist.cdf in
  let m = Os.median3 f1.Dist.cdf f2.Dist.cdf f3.Dist.cdf in
  let m' = Os.median3 f1'.Dist.cdf f2.Dist.cdf f3.Dist.cdf in
  let d23 = Ks.distance ~lo:0. ~hi:15. m m' in
  if d23 >= d1 then Alcotest.failf "no contraction: %f >= %f" d23 d1

let test_theorem4_half () =
  let f1 = Dist.exponential ~rate:1. in
  let f1' = Dist.exponential ~rate:0.5 in
  let f2 = Dist.exponential ~rate:1. in
  let d1 = Ks.distance ~lo:0. ~hi:15. f1.Dist.cdf f1'.Dist.cdf in
  let m = Os.median3 f1.Dist.cdf f2.Dist.cdf f2.Dist.cdf in
  let m' = Os.median3 f1'.Dist.cdf f2.Dist.cdf f2.Dist.cdf in
  let d23 = Ks.distance ~lo:0. ~hi:15. m m' in
  if d23 > (0.5 *. d1) +. 1e-9 then
    Alcotest.failf "iid contraction above 1/2: %f vs %f" d23 d1

let prop_theorem3 =
  QCheck.Test.make ~name:"Thm 3: median contracts KS distance" ~count:50
    QCheck.(
      quad (float_range 0.3 3.) (float_range 0.3 3.) (float_range 0.3 3.)
        (float_range 0.3 3.))
    (fun (l1, l1', l2, l3) ->
      QCheck.assume (Float.abs (l1 -. l1') > 0.05);
      let c r = (Dist.exponential ~rate:r).Dist.cdf in
      let d1 = Ks.distance ~lo:0. ~hi:30. (c l1) (c l1') in
      let m = Os.median3 (c l1) (c l2) (c l3) in
      let m' = Os.median3 (c l1') (c l2) (c l3) in
      let d23 = Ks.distance ~lo:0. ~hi:30. m m' in
      d23 < d1 +. 1e-9)

let prop_theorem4 =
  QCheck.Test.make ~name:"Thm 4: iid X2,X3 contract by >= 1/2" ~count:50
    QCheck.(triple (float_range 0.3 3.) (float_range 0.3 3.) (float_range 0.3 3.))
    (fun (l1, l1', l2) ->
      QCheck.assume (Float.abs (l1 -. l1') > 0.05);
      let c r = (Dist.exponential ~rate:r).Dist.cdf in
      let d1 = Ks.distance ~lo:0. ~hi:30. (c l1) (c l1') in
      let m = Os.median3 (c l1) (c l2) (c l2) in
      let m' = Os.median3 (c l1') (c l2) (c l2) in
      let d23 = Ks.distance ~lo:0. ~hi:30. m m' in
      d23 <= (0.5 *. d1) +. 1e-6)

(* --- Divergences ------------------------------------------------------------ *)

let test_total_variation () =
  close "identical" 0. (Sw_stats.Divergences.total_variation [| 0.5; 0.5 |] [| 0.5; 0.5 |]);
  close "disjoint" 1. (Sw_stats.Divergences.total_variation [| 1.; 0. |] [| 0.; 1. |]);
  close "half" 0.5 (Sw_stats.Divergences.total_variation [| 1.; 0. |] [| 0.5; 0.5 |])

let test_kl () =
  close "identical" 0. (Sw_stats.Divergences.kl [| 0.3; 0.7 |] [| 0.3; 0.7 |]);
  let d = Sw_stats.Divergences.kl [| 0.9; 0.1 |] [| 0.5; 0.5 |] in
  if d <= 0. then Alcotest.fail "positive for distinct distributions";
  Alcotest.(check (float 0.)) "infinite on missing support" infinity
    (Sw_stats.Divergences.kl [| 0.5; 0.5 |] [| 1.; 0. |])

let test_kl_median_dampens () =
  (* StopWatch's median shrinks the KL divergence the attacker can exploit. *)
  let base = Dist.exponential ~rate:1. in
  let victim = Dist.exponential ~rate:0.5 in
  let med3 = Os.median_dist [| base; base; base |] in
  let med2v = Os.median_dist [| victim; base; base |] in
  let raw =
    Sw_stats.Divergences.kl_observations_needed ~null:base ~alt:victim
      ~confidence:0.95 ()
  in
  let med =
    Sw_stats.Divergences.kl_observations_needed ~null:med3 ~alt:med2v
      ~confidence:0.95 ()
  in
  if not (med > 2. *. raw) then
    Alcotest.failf "median must raise the KL sample complexity (%f vs %f)" med raw

let test_goodness_of_fit () =
  let d = Dist.exponential ~rate:1. in
  let edges = Chi.equiprobable_edges d ~bins:8 in
  let null_probs = Chi.bin_probs ~edges d.Dist.cdf in
  let rng = Sw_sim.Prng.create 21L in
  let own = Array.init 2000 (fun _ -> Sw_sim.Prng.exponential rng ~rate:1.) in
  let other = Array.init 2000 (fun _ -> Sw_sim.Prng.exponential rng ~rate:0.5) in
  let p_own = Chi.goodness_of_fit ~edges ~null_probs ~samples:own in
  let p_other = Chi.goodness_of_fit ~edges ~null_probs ~samples:other in
  if p_own < 0.01 then Alcotest.failf "own sample rejected (p=%f)" p_own;
  if p_other > 1e-6 then Alcotest.failf "foreign sample accepted (p=%f)" p_other

(* --- KS ------------------------------------------------------------------ *)

let test_ks_identical () =
  let f = (Dist.exponential ~rate:1.).Dist.cdf in
  close "zero distance" 0. (Ks.distance ~lo:0. ~hi:10. f f)

let test_ks_two_sample () =
  let a = [| 1.; 2.; 3.; 4. |] and b = [| 1.; 2.; 3.; 4. |] in
  close "same sample" 0. (Ks.two_sample a b);
  let c = [| 11.; 12.; 13.; 14. |] in
  close "disjoint" 1. (Ks.two_sample a c)

(* --- Chi-square ----------------------------------------------------------- *)

let test_chi2_cdf_known () =
  (* df=2: cdf(x) = 1 - e^(-x/2). *)
  close ~eps:1e-9 "df2" (1. -. Float.exp (-1.)) (Chi.cdf ~df:2 2.);
  (* Known critical value: chi2(0.95, df=3) ~ 7.8147. *)
  close ~eps:1e-3 "crit df3" 7.8147 (Chi.critical_value ~df:3 ~confidence:0.95);
  close ~eps:1e-3 "crit df9 99%" 21.666 (Chi.critical_value ~df:9 ~confidence:0.99)

let test_chi2_statistic () =
  close "zero when equal" 0.
    (Chi.statistic ~expected:[| 10.; 20. |] ~observed:[| 10.; 20. |]);
  close "basic" 1.
    (Chi.statistic ~expected:[| 4.; 100. |] ~observed:[| 6.; 100. |])

let test_observations_needed_monotone () =
  let null = Dist.exponential ~rate:1. in
  let alt = Dist.exponential ~rate:0.5 in
  let edges = Chi.equiprobable_edges null ~bins:10 in
  let null_probs = Chi.bin_probs ~edges null.Dist.cdf in
  let alt_probs = Chi.bin_probs ~edges alt.Dist.cdf in
  let n70 = Chi.observations_needed ~null_probs ~alt_probs ~confidence:0.70 in
  let n99 = Chi.observations_needed ~null_probs ~alt_probs ~confidence:0.99 in
  if not (n99 > n70) then Alcotest.fail "higher confidence needs more observations";
  let same = Chi.observations_needed ~null_probs ~alt_probs:null_probs ~confidence:0.9 in
  if same <> infinity then Alcotest.fail "identical distributions must be infinite"

let test_bin_utilities () =
  let d = Dist.exponential ~rate:1. in
  let edges = Chi.equiprobable_edges d ~bins:4 in
  Alcotest.(check int) "edges count" 3 (Array.length edges);
  let probs = Chi.bin_probs ~edges d.Dist.cdf in
  Array.iter (fun p -> close ~eps:1e-3 "equiprobable" 0.25 p) probs;
  let counts = Chi.bin_counts ~edges [| 0.01; 100.; edges.(0) -. 1e-9 |] in
  close "first bin" 2. counts.(0);
  close "last bin" 1. counts.(3)

let test_integrate () =
  close ~eps:1e-6 "simpson x^2"
    (1. /. 3.)
    (Sw_stats.Integrate.simpson (fun x -> x *. x) ~a:0. ~b:1.);
  close ~eps:1e-4 "trapezoid sin"
    2.
    (Sw_stats.Integrate.trapezoid Float.sin ~a:0. ~b:Float.pi)

let () =
  Alcotest.run "sw_stats"
    [
      ( "special",
        [
          Alcotest.test_case "log_gamma" `Quick test_log_gamma;
          Alcotest.test_case "gamma_p" `Quick test_gamma_p;
          Alcotest.test_case "erf" `Quick test_erf;
          Alcotest.test_case "choose" `Quick test_choose;
        ] );
      ( "dist",
        [
          Alcotest.test_case "exponential cdf" `Quick test_exponential_cdf;
          Alcotest.test_case "uniform quantile" `Quick test_uniform_quantile;
          Alcotest.test_case "mean" `Quick test_mean_exponential;
          Alcotest.test_case "sum of independents" `Quick test_add_means;
          Alcotest.test_case "empirical" `Quick test_of_samples;
          Alcotest.test_case "constant & shift" `Quick test_constant_and_shift;
        ] );
      ( "order-stats",
        [
          Alcotest.test_case "median3 iid closed form" `Quick test_median3_iid_formula;
          Alcotest.test_case "rank extremes" `Quick test_cdf_rank_extremes;
          Alcotest.test_case "rank 2-of-3 = median3" `Quick
            test_cdf_rank_median_matches_median3;
          Alcotest.test_case "sample median" `Quick test_sample_median;
          Alcotest.test_case "int64 median networks" `Quick
            test_median_int64_networks;
          QCheck_alcotest.to_alcotest prop_median_int64_matches_sort;
          QCheck_alcotest.to_alcotest prop_rank_cdf_monotone_in_x;
          QCheck_alcotest.to_alcotest prop_median_dist_sampler_agrees;
        ] );
      ( "theorems",
        [
          Alcotest.test_case "theorem 3 contraction" `Quick test_theorem3_contraction;
          Alcotest.test_case "theorem 4 halving" `Quick test_theorem4_half;
          QCheck_alcotest.to_alcotest prop_theorem3;
          QCheck_alcotest.to_alcotest prop_theorem4;
        ] );
      ( "ks",
        [
          Alcotest.test_case "identical" `Quick test_ks_identical;
          Alcotest.test_case "two-sample" `Quick test_ks_two_sample;
        ] );
      ( "divergences",
        [
          Alcotest.test_case "total variation" `Quick test_total_variation;
          Alcotest.test_case "kl" `Quick test_kl;
          Alcotest.test_case "kl median dampening" `Quick test_kl_median_dampens;
          Alcotest.test_case "goodness of fit" `Quick test_goodness_of_fit;
        ] );
      ( "chi-square",
        [
          Alcotest.test_case "cdf and criticals" `Quick test_chi2_cdf_known;
          Alcotest.test_case "statistic" `Quick test_chi2_statistic;
          Alcotest.test_case "observations monotone" `Quick
            test_observations_needed_monotone;
          Alcotest.test_case "binning" `Quick test_bin_utilities;
          Alcotest.test_case "integration" `Quick test_integrate;
        ] );
    ]
