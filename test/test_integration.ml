(* End-to-end integration tests of the StopWatch cloud: replica lockstep,
   egress/ingress behaviour under real guests, reproducibility, the
   Fig. 2 protocol invariants, divergence-freedom of the default
   configuration, and the placement-driven multi-VM deployment. *)

module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud
module Host = Stopwatch.Host
module App = Sw_vm.App
module Packet = Sw_net.Packet

type Packet.payload += Ping of int | Pong of int

let echo_app : App.factory =
  App.stateful ~init:0 ~handle:(fun count ~virt_now:_ ev ->
      match ev with
      | App.Packet_in pkt -> (
          match pkt.Packet.payload with
          | Ping n ->
              ( count + 1,
                [
                  App.Compute 10_000L;
                  App.Send { dst = pkt.Packet.src; size = 100; payload = Pong n };
                ] )
          | _ -> (count, []))
      | _ -> (count, []))

let ping_run ?(machines = 3) ?(pings = 20) ?(deploy = `Stopwatch) ?(seed = 1L) () =
  let cloud = Cloud.create ~seed ~machines () in
  let d =
    match deploy with
    | `Stopwatch -> Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:echo_app
    | `Baseline -> Cloud.deploy_baseline cloud ~on:0 ~app:echo_app
  in
  let client = Cloud.add_host cloud () in
  let pongs = ref [] in
  Host.set_handler client (fun pkt ->
      match pkt.Packet.payload with
      | Pong n -> pongs := (n, Host.now client) :: !pongs
      | _ -> ());
  for n = 1 to pings do
    Host.after client (Time.ms (50 * n)) (fun () ->
        Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping n))
  done;
  Cloud.run cloud ~until:(Time.s 3);
  (cloud, d, List.rev !pongs)

let test_all_pings_answered () =
  let _, d, pongs = ping_run () in
  Alcotest.(check (list int)) "all pongs, in order"
    (List.init 20 (fun i -> i + 1))
    (List.map fst pongs);
  Alcotest.(check int) "no divergences" 0 (Cloud.divergences d)

let test_replicas_in_lockstep () =
  let _, d, _ = ping_run () in
  let replicas = Cloud.replicas d in
  Alcotest.(check int) "three replicas" 3 (List.length replicas);
  let virt r = Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest r) in
  let sent r = Sw_vm.Guest.sent_packets (Sw_vmm.Vmm.guest r) in
  let deliveries r = Sw_vmm.Vmm.net_deliveries r in
  match replicas with
  | first :: rest ->
      List.iter
        (fun r ->
          Alcotest.(check int64) "identical virtual time" (virt first) (virt r);
          Alcotest.(check int) "identical output count" (sent first) (sent r);
          Alcotest.(check int) "identical deliveries" (deliveries first) (deliveries r))
        rest
  | [] -> Alcotest.fail "no replicas"

let test_replicas_observe_identical_interdeliveries () =
  let _, d, _ = ping_run () in
  match Cloud.replicas d with
  | a :: rest ->
      let ref_obs = Sw_vmm.Vmm.inter_delivery_virts_ms a in
      List.iter
        (fun r ->
          let obs = Sw_vmm.Vmm.inter_delivery_virts_ms r in
          if obs <> ref_obs then
            Alcotest.fail "replicas must see identical virtual inter-delivery times")
        rest
  | [] -> Alcotest.fail "no replicas"

let test_egress_exactly_once () =
  let cloud, d, pongs = ping_run () in
  Alcotest.(check int) "client got each pong once" 20 (List.length pongs);
  Alcotest.(check int) "egress forwarded exactly the pongs" 20
    (Sw_net.Egress.forwarded (Cloud.egress cloud));
  Alcotest.(check int) "ingress replicated each ping" 20
    (Sw_net.Ingress.replicated (Cloud.ingress cloud));
  ignore d

let test_reproducible_runs () =
  let _, _, a = ping_run ~seed:42L () in
  let _, _, b = ping_run ~seed:42L () in
  Alcotest.(check bool) "identical traces for identical seeds" true (a = b)

let test_seed_changes_timings () =
  let _, _, a = ping_run ~seed:1L () in
  let _, _, b = ping_run ~seed:2L () in
  (* Same logical results... *)
  Alcotest.(check (list int)) "same pongs" (List.map fst a) (List.map fst b);
  (* ...but jitter differs somewhere. *)
  Alcotest.(check bool) "different micro-timings" true
    (List.map snd a <> List.map snd b)

let test_stopwatch_slower_than_baseline () =
  let rtt pongs =
    List.mapi (fun i (_, at) -> Time.to_float_ms at -. float_of_int (50 * (i + 1))) pongs
  in
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  let _, _, sw = ping_run ~deploy:`Stopwatch () in
  let _, _, bl = ping_run ~deploy:`Baseline () in
  let sw_rtt = mean (rtt sw) and bl_rtt = mean (rtt bl) in
  if sw_rtt <= bl_rtt then
    Alcotest.failf "StopWatch rtt (%.2f) must exceed baseline (%.2f)" sw_rtt bl_rtt;
  (* The gap is delta_n-scale: between 1x and 5x here. *)
  if sw_rtt /. bl_rtt > 8. then
    Alcotest.failf "implausible overhead %.1fx" (sw_rtt /. bl_rtt)

let test_background_noise_keeps_determinism () =
  let run () =
    let cloud = Cloud.create ~seed:7L ~machines:3 () in
    let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:echo_app in
    Cloud.start_background cloud ~rate_per_s:100. ();
    let client = Cloud.add_host cloud () in
    let pongs = ref 0 in
    Host.set_handler client (fun pkt ->
        match pkt.Packet.payload with Pong _ -> incr pongs | _ -> ());
    for n = 1 to 10 do
      Host.after client (Time.ms (40 * n)) (fun () ->
          Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping n))
    done;
    Cloud.run cloud ~until:(Time.s 2);
    let virt r = Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest r) in
    (!pongs, List.map virt (Cloud.replicas d), Cloud.divergences d)
  in
  let pongs, virts, div = run () in
  Alcotest.(check int) "pongs under noise" 10 pongs;
  Alcotest.(check int) "no divergences" 0 div;
  match virts with
  | v :: rest -> List.iter (fun v' -> Alcotest.(check int64) "lockstep" v v') rest
  | [] -> ()

let prop_lockstep_any_seed =
  QCheck.Test.make ~name:"replicas stay in lockstep for any seed" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let cloud = Cloud.create ~seed:(Int64.of_int seed) ~machines:3 () in
      let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:echo_app in
      let client = Cloud.add_host cloud () in
      for n = 1 to 5 do
        Host.after client (Time.ms (30 * n)) (fun () ->
            Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping n))
      done;
      Cloud.run cloud ~until:(Time.ms 600);
      match Cloud.replicas d with
      | first :: rest ->
          let virt r = Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest r) in
          let obs r = Sw_vmm.Vmm.inter_delivery_virts_ms r in
          List.for_all
            (fun r -> Time.equal (virt first) (virt r) && obs first = obs r)
            rest
          && Cloud.divergences d = 0
      | [] -> false)

let test_deploy_validation () =
  let cloud = Cloud.create ~machines:3 () in
  Alcotest.check_raises "wrong replica count" (Invalid_argument "x") (fun () ->
      try ignore (Cloud.deploy cloud ~on:[ 0; 1 ] ~app:echo_app) with
      | Invalid_argument _ -> raise (Invalid_argument "x"));
  Alcotest.check_raises "duplicate machines" (Invalid_argument "x") (fun () ->
      try ignore (Cloud.deploy cloud ~on:[ 0; 0; 1 ] ~app:echo_app) with
      | Invalid_argument _ -> raise (Invalid_argument "x"));
  Alcotest.check_raises "machine out of range" (Invalid_argument "x") (fun () ->
      try ignore (Cloud.deploy cloud ~on:[ 0; 1; 7 ] ~app:echo_app) with
      | Invalid_argument _ -> raise (Invalid_argument "x"))

let test_deploy_plan () =
  let cloud = Cloud.create ~machines:9 () in
  match Sw_placement.Placement.theorem2_place ~n:9 ~c:3 ~k:9 with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      let deployments = Cloud.deploy_plan cloud ~plan ~app:echo_app in
      Alcotest.(check int) "nine VMs deployed" 9 (List.length deployments);
      let client = Cloud.add_host cloud () in
      let pongs = ref 0 in
      Host.set_handler client (fun pkt ->
          match pkt.Packet.payload with Pong _ -> incr pongs | _ -> ());
      List.iteri
        (fun i d ->
          Host.after client (Time.ms (10 * (i + 1))) (fun () ->
              Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping i)))
        deployments;
      Cloud.run cloud ~until:(Time.s 2);
      Alcotest.(check int) "every VM answered" 9 !pongs

let test_five_replicas_end_to_end () =
  let config = { Sw_vmm.Config.default with Sw_vmm.Config.replicas = 5 } in
  let cloud = Cloud.create ~config ~machines:5 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2; 3; 4 ] ~app:echo_app in
  let client = Cloud.add_host cloud () in
  let pongs = ref 0 in
  Host.set_handler client (fun pkt ->
      match pkt.Packet.payload with Pong _ -> incr pongs | _ -> ());
  for n = 1 to 5 do
    Host.after client (Time.ms (50 * n)) (fun () ->
        Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping n))
  done;
  Cloud.run cloud ~until:(Time.s 2);
  Alcotest.(check int) "pongs with 5 replicas" 5 !pongs;
  Alcotest.(check int) "exactly once" 5 (Sw_net.Egress.forwarded (Cloud.egress cloud))

let test_divergence_on_tiny_delta_n () =
  (* A delta_n far below the proposal round-trip forces synchrony
     violations, which must be detected and counted, while traffic still
     flows. *)
  let config = { Sw_vmm.Config.default with Sw_vmm.Config.delta_n = Time.us 100 } in
  let cloud = Cloud.create ~config ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:echo_app in
  let client = Cloud.add_host cloud () in
  let pongs = ref 0 in
  Host.set_handler client (fun pkt ->
      match pkt.Packet.payload with Pong _ -> incr pongs | _ -> ());
  for n = 1 to 10 do
    Host.after client (Time.ms (30 * n)) (fun () ->
        Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping n))
  done;
  Cloud.run cloud ~until:(Time.s 2);
  if Cloud.divergences d = 0 then
    Alcotest.fail "expected synchrony violations with a 100 us delta_n";
  Alcotest.(check int) "pings still delivered" 10 !pongs

type Packet.payload += Dma_report of { completions : int; virt_ms : float }

let test_dma_end_to_end () =
  (* A guest chaining DMA transfers: completions arrive at virt + delta_d,
     identically across replicas, and the external report confirms it. *)
  let app : App.factory =
    App.stateful ~init:0 ~handle:(fun n ~virt_now ev ->
        match ev with
        | App.Boot -> (n, [ App.Dma_transfer { bytes = 1 lsl 20; tag = 0 } ])
        | App.Dma_done { tag } when tag < 4 ->
            (n + 1, [ App.Dma_transfer { bytes = 1 lsl 20; tag = tag + 1 } ])
        | App.Dma_done _ ->
            ( n + 1,
              [
                App.Send
                  {
                    dst = Sw_net.Address.Host 0;
                    size = 64;
                    payload =
                      Dma_report
                        { completions = n + 1; virt_ms = Time.to_float_ms virt_now };
                  };
              ] )
        | _ -> (n, []))
  in
  let cloud = Cloud.create ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app in
  let collector = Cloud.add_host cloud () in
  let report = ref None in
  Host.set_handler collector (fun pkt ->
      match pkt.Packet.payload with
      | Dma_report { completions; virt_ms } -> report := Some (completions, virt_ms)
      | _ -> ());
  Cloud.run cloud ~until:(Time.s 2);
  (match !report with
  | Some (5, virt_ms) ->
      (* Five chained transfers, each delivered at issue + delta_d (12 ms):
         the last completion lands near 60 ms of virtual time. *)
      if virt_ms < 59. || virt_ms > 75. then
        Alcotest.failf "unexpected completion virt %f ms" virt_ms
  | Some (n, _) -> Alcotest.failf "expected 5 completions, got %d" n
  | None -> Alcotest.fail "no report received");
  (match Cloud.replicas d with
  | first :: rest ->
      List.iter
        (fun r ->
          Alcotest.(check int) "same dma interrupts"
            (Sw_vmm.Vmm.dma_interrupts first) (Sw_vmm.Vmm.dma_interrupts r))
        rest
  | [] -> ());
  Alcotest.(check int) "no divergences" 0 (Cloud.divergences d)

let test_lossy_fabric_pgm_recovery () =
  (* 5% loss on every cloud-internal link. The PGM channel (with heartbeats)
     must still deliver every inbound packet to every replica, in order, and
     keep the replicas in lockstep; proposals and epoch traffic recover the
     same way. Only the unprotected egress tunnels may drop pongs. *)
  let config =
    {
      Sw_vmm.Config.default with
      Sw_vmm.Config.mcast_heartbeat = Some (Time.ms 10);
    }
  in
  let lossy = { Sw_net.Network.lan with Sw_net.Network.loss = 0.05 } in
  let cloud = Cloud.create ~config ~default_link:lossy ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:echo_app in
  (* The client's access link stays clean so the measurement isn't about
     client-side drops. *)
  let client = Cloud.add_host cloud ~link:Sw_net.Network.wan () in
  let pongs = ref 0 in
  Host.set_handler client (fun pkt ->
      match pkt.Packet.payload with Pong _ -> incr pongs | _ -> ());
  let pings = 30 in
  for n = 1 to pings do
    Host.after client (Time.ms (40 * n)) (fun () ->
        Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping n))
  done;
  Cloud.run cloud ~until:(Time.s 4);
  (match Cloud.replicas d with
  | first :: rest ->
      Alcotest.(check int)
        "every ping delivered to every replica despite loss" pings
        (Sw_vmm.Vmm.net_deliveries first);
      List.iter
        (fun r ->
          Alcotest.(check int) "replica deliveries equal" pings
            (Sw_vmm.Vmm.net_deliveries r);
          Alcotest.(check int64) "lockstep under loss"
            (Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest first))
            (Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest r)))
        rest
  | [] -> Alcotest.fail "no replicas");
  if !pongs < pings - 6 then
    Alcotest.failf "too many pongs lost through unprotected tunnels: %d/%d" !pongs
      pings

let test_epoch_resync_in_cloud () =
  let config =
    {
      Sw_vmm.Config.default with
      Sw_vmm.Config.slope_ns_per_branch = 1.1;
      epoch =
        Some
          {
            Sw_vmm.Config.interval_branches = 100_000_000L;
            slope_l = 0.9;
            slope_u = 1.1;
          };
    }
  in
  let cloud = Cloud.create ~config ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:Sw_vm.App.idle in
  Cloud.run cloud ~until:(Time.s 2);
  let epochs = Sw_vmm.Replica_group.epochs_resolved (Cloud.group d) in
  if epochs < 10 then Alcotest.failf "expected many epochs, got %d" epochs;
  (* The drift must be bounded near 0.1 * I (10 ms) rather than the
     unsynchronised 10% of 2 s = 200 ms. *)
  let inst = List.hd (Cloud.replicas d) in
  let virt = Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest inst) in
  let drift = Float.abs (Time.to_float_ms (Time.sub virt (Cloud.engine cloud |> Sw_sim.Engine.now))) in
  if drift > 50. then Alcotest.failf "drift %f ms not contained" drift

type Packet.payload += Leak of int

let test_nondeterministic_app_caught_by_vote () =
  (* A buggy application that violates the determinism contract: its factory
     captures one shared counter, so the three replicas emit different
     payloads. The egress's output vote must flag it. *)
  let shared = ref 0 in
  let buggy : App.factory =
   fun () ->
    {
      App.handle =
        (fun ~virt_now:_ ev ->
          match ev with
          | App.Packet_in pkt ->
              incr shared;
              [ App.Send { dst = pkt.Packet.src; size = 100; payload = Leak !shared } ]
          | _ -> []);
    }
  in
  let cloud = Cloud.create ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:buggy in
  let client = Cloud.add_host cloud () in
  Host.set_handler client (fun _ -> ());
  Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping 1);
  Cloud.run cloud ~until:(Time.ms 500);
  if Sw_net.Egress.mismatches (Cloud.egress cloud) = 0 then
    Alcotest.fail "output vote must catch a nondeterministic guest"

let test_heterogeneous_hardware () =
  (* Machines differ in speed by up to 1%: replicas skew in real time, the
     limiter repeatedly deschedules the fastest one (keeping the fastest two
     within the bound — the paper's rule; the third may lag), and the system
     still delivers everything deterministically and exactly once. *)
  let cloud = Cloud.create ~seed:9L ~rate_spread:0.01 ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:echo_app in
  let client = Cloud.add_host cloud () in
  let pongs = ref [] in
  Host.set_handler client (fun pkt ->
      match pkt.Packet.payload with
      | Pong n -> pongs := n :: !pongs
      | _ -> ());
  for n = 1 to 20 do
    Host.after client (Time.ms (50 * n)) (fun () ->
        Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping n))
  done;
  Cloud.run cloud ~until:(Time.s 3);
  Alcotest.(check (list int)) "all pongs in order"
    (List.init 20 (fun i -> i + 1))
    (List.rev !pongs);
  Alcotest.(check int) "exactly once" 20 (Sw_net.Egress.forwarded (Cloud.egress cloud));
  Alcotest.(check int) "no divergences" 0 (Cloud.divergences d);
  if Cloud.skew_blocks d = 0 then
    Alcotest.fail "the skew limiter should have fired on 1% speed spread";
  (* The paper's invariant: the two fastest replicas stay within the bound
     (up to one slice of overshoot); the third may lag. *)
  let virts =
    List.map (fun r -> Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest r)) (Cloud.replicas d)
  in
  (match List.sort (fun a b -> Time.compare b a) virts with
  | fastest :: second :: _ ->
      let gap = Time.to_float_ms (Time.sub fastest second) in
      if gap > 2.5 then Alcotest.failf "fastest-two gap %.2f ms exceeds the bound" gap
  | _ -> Alcotest.fail "missing replicas");
  (* Replicas deliver the same interrupts at the same virtual instants even
     though their branch counters differ in real time. *)
  match Cloud.replicas d with
  | a :: rest ->
      let obs r = Sw_vmm.Vmm.inter_delivery_virts_ms r in
      List.iter
        (fun r ->
          if obs r <> obs a then Alcotest.fail "virtual observations must agree")
        rest
  | [] -> ()

let test_clock_offsets_start_negotiation () =
  (* Machine clocks err by up to 2 ms; the replicas' shared virtual-clock
     start is the median reading and everything still works. *)
  let cloud = Cloud.create ~seed:11L ~clock_spread:(Time.ms 2) ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:echo_app in
  let client = Cloud.add_host cloud () in
  let pongs = ref 0 in
  Host.set_handler client (fun pkt ->
      match pkt.Packet.payload with Pong _ -> incr pongs | _ -> ());
  for n = 1 to 10 do
    Host.after client (Time.ms (40 * n)) (fun () ->
        Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping n))
  done;
  Cloud.run cloud ~until:(Time.s 1);
  Alcotest.(check int) "all pongs" 10 !pongs;
  Alcotest.(check int) "no divergences" 0 (Cloud.divergences d);
  match Cloud.replicas d with
  | a :: rest ->
      List.iter
        (fun r ->
          Alcotest.(check int64) "identical virt despite clock error"
            (Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest a))
            (Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest r)))
        rest
  | [] -> ()

let test_replay_recovery () =
  (* Run traffic, rebuild one replica from its log mid-run, swap it in, and
     keep going: the recovered replica must match the others exactly. *)
  let config = { Sw_vmm.Config.default with Sw_vmm.Config.replay_log = true } in
  let cloud = Cloud.create ~config ~machines:3 () in
  let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:echo_app in
  let client = Cloud.add_host cloud () in
  let pongs = ref 0 in
  Host.set_handler client (fun pkt ->
      match pkt.Packet.payload with Pong _ -> incr pongs | _ -> ());
  for n = 1 to 20 do
    Host.after client (Time.ms (40 * n)) (fun () ->
        Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping n))
  done;
  (* First half of the run. *)
  Cloud.run cloud ~until:(Time.ms 450);
  let victim_replica = List.nth (Cloud.replicas d) 1 in
  let live = Sw_vmm.Vmm.guest victim_replica in
  let clone = Sw_vmm.Vmm.rebuild victim_replica in
  Alcotest.(check int64) "clone branch counter" (Sw_vm.Guest.instr live)
    (Sw_vm.Guest.instr clone);
  Alcotest.(check int64) "clone virtual clock" (Sw_vm.Guest.virt_now live)
    (Sw_vm.Guest.virt_now clone);
  Alcotest.(check int) "clone packet numbering" (Sw_vm.Guest.sent_packets live)
    (Sw_vm.Guest.sent_packets clone);
  (* Install the clone and finish the run on it. *)
  Sw_vmm.Vmm.recover victim_replica;
  Cloud.run cloud ~until:(Time.s 2);
  Alcotest.(check int) "all pongs (recovered replica kept up)" 20 !pongs;
  Alcotest.(check int) "no output-vote mismatches" 0
    (Sw_net.Egress.mismatches (Cloud.egress cloud));
  match Cloud.replicas d with
  | a :: rest ->
      List.iter
        (fun r ->
          Alcotest.(check int64) "lockstep after recovery"
            (Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest a))
            (Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest r)))
        rest
  | [] -> ()

(* A pseudo-random application: every instance derives the same action
   stream from a deterministic per-event hash, so replicas agree while the
   behaviour exercises arbitrary interleavings of compute, sends, disk, DMA
   and timers. *)
let random_app ~app_seed : App.factory =
  App.stateful ~init:(app_seed, 0) ~handle:(fun (state, events) ~virt_now:_ ev ->
      let state = (state * 1103515245) + 12345 in
      let pick = abs (state / 65536) mod 100 in
      let actions =
        match ev with
        | App.Packet_in pkt ->
            if pick < 30 then
              [
                App.Compute (Int64.of_int (1000 + (pick * 997)));
                App.Send
                  { dst = pkt.Packet.src; size = 80 + pick; payload = Pong events };
              ]
            else if pick < 50 then
              [ App.Disk_read { bytes = 512 + (pick * 64); sequential = pick mod 2 = 0; tag = events } ]
            else if pick < 60 then [ App.Dma_transfer { bytes = 4096; tag = events } ]
            else if pick < 80 then
              [ App.Set_timer { after = Time.us (100 * (pick + 1)); tag = events } ]
            else [ App.Compute (Int64.of_int (5000 * pick)) ]
        | App.Disk_done _ | App.Dma_done _ ->
            [
              App.Compute 2000L;
              App.Send
                { dst = Sw_net.Address.Host 0; size = 64; payload = Pong events };
            ]
        | App.Timer _ -> [ App.Compute 12_345L ]
        | App.Boot | App.Tick -> []
      in
      ((state, events + 1), actions))

let prop_random_apps_stay_in_lockstep =
  QCheck.Test.make ~name:"random applications keep replicas in lockstep" ~count:12
    QCheck.(pair (int_bound 1_000_000) (int_range 5 25))
    (fun (app_seed, pings) ->
      let cloud = Cloud.create ~seed:(Int64.of_int (app_seed + 13)) ~machines:3 () in
      let d = Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(random_app ~app_seed) in
      let client = Cloud.add_host cloud () in
      Host.set_handler client (fun _ -> ());
      for n = 1 to pings do
        Host.after client (Time.ms (17 * n)) (fun () ->
            Host.send client ~dst:(Cloud.vm_address d) ~size:100 (Ping n))
      done;
      Cloud.run cloud ~until:(Time.ms (17 * pings) |> Time.add (Time.ms 400));
      Sw_net.Egress.mismatches (Cloud.egress cloud) = 0
      && Cloud.divergences d = 0
      &&
      match Cloud.replicas d with
      | a :: rest ->
          List.for_all
            (fun r ->
              Time.equal
                (Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest a))
                (Sw_vm.Guest.virt_now (Sw_vmm.Vmm.guest r))
              && Sw_vm.Guest.sent_packets (Sw_vmm.Vmm.guest a)
                 = Sw_vm.Guest.sent_packets (Sw_vmm.Vmm.guest r))
            rest
      | [] -> false)

let () =
  Alcotest.run "integration"
    [
      ( "stopwatch-cloud",
        [
          Alcotest.test_case "all pings answered" `Quick test_all_pings_answered;
          Alcotest.test_case "replica lockstep" `Quick test_replicas_in_lockstep;
          Alcotest.test_case "identical observations" `Quick
            test_replicas_observe_identical_interdeliveries;
          Alcotest.test_case "egress exactly once" `Quick test_egress_exactly_once;
          Alcotest.test_case "reproducible" `Quick test_reproducible_runs;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_timings;
          Alcotest.test_case "overhead direction" `Quick
            test_stopwatch_slower_than_baseline;
          Alcotest.test_case "background noise" `Quick
            test_background_noise_keeps_determinism;
          QCheck_alcotest.to_alcotest prop_lockstep_any_seed;
        ] );
      ( "deployment",
        [
          Alcotest.test_case "validation" `Quick test_deploy_validation;
          Alcotest.test_case "placement plan" `Quick test_deploy_plan;
          Alcotest.test_case "five replicas" `Quick test_five_replicas_end_to_end;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "divergence detection" `Quick
            test_divergence_on_tiny_delta_n;
          Alcotest.test_case "pgm recovery under fabric loss" `Quick
            test_lossy_fabric_pgm_recovery;
          Alcotest.test_case "dma end-to-end" `Quick test_dma_end_to_end;
          Alcotest.test_case "heterogeneous hardware" `Quick
            test_heterogeneous_hardware;
          Alcotest.test_case "clock offsets & start negotiation" `Quick
            test_clock_offsets_start_negotiation;
          Alcotest.test_case "output vote catches nondeterminism" `Quick
            test_nondeterministic_app_caught_by_vote;
          Alcotest.test_case "replay-based recovery" `Quick test_replay_recovery;
          QCheck_alcotest.to_alcotest prop_random_apps_stay_in_lockstep;
          Alcotest.test_case "epoch resync" `Quick test_epoch_resync_in_cloud;
        ] );
    ]
