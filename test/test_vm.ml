(* Tests for the guest VM model: the fixed-point virtual clock (Eqn. 1), the
   deterministic guest runtime (action processing, packet numbering, timers,
   PIT ticks, idle spinning). *)

module Time = Sw_sim.Time
module Vt = Sw_vm.Virtual_time
module App = Sw_vm.App
module Guest = Sw_vm.Guest

(* --- Virtual time ----------------------------------------------------------- *)

let test_vt_linear () =
  let vt = Vt.create ~start:(Time.ms 5) ~slope_ns_per_branch:1.0 () in
  Alcotest.(check int64) "at 0" (Time.ms 5) (Vt.virt_at vt 0L);
  Alcotest.(check int64) "at 1e6" (Time.ms 6) (Vt.virt_at vt 1_000_000L)

let test_vt_fractional_slope () =
  let vt = Vt.create ~start:Time.zero ~slope_ns_per_branch:0.5 () in
  Alcotest.(check int64) "half speed" (Time.ms 1) (Vt.virt_at vt 2_000_000L)

let test_vt_set_slope_continuous () =
  let vt = Vt.create ~start:Time.zero ~slope_ns_per_branch:2.0 () in
  let before = Vt.virt_at vt 1000L in
  Vt.set_slope vt ~at_instr:1000L ~slope_ns_per_branch:1.0;
  Alcotest.(check int64) "continuous at switch" before (Vt.virt_at vt 1000L);
  Alcotest.(check int64) "new slope applies"
    (Time.add before (Time.ns 500))
    (Vt.virt_at vt 1500L)

let test_vt_rejects_past () =
  let vt = Vt.create ~start:Time.zero ~slope_ns_per_branch:1.0 () in
  Vt.set_slope vt ~at_instr:100L ~slope_ns_per_branch:1.0;
  Alcotest.check_raises "before segment" (Invalid_argument "x") (fun () ->
      try ignore (Vt.virt_at vt 50L) with
      | Invalid_argument _ -> raise (Invalid_argument "x"))

let test_vt_clamp () =
  Alcotest.(check (float 0.)) "below" 0.9 (Vt.clamped_slope ~l:0.9 ~u:1.1 0.2);
  Alcotest.(check (float 0.)) "above" 1.1 (Vt.clamped_slope ~l:0.9 ~u:1.1 7.);
  Alcotest.(check (float 0.)) "inside" 1.05 (Vt.clamped_slope ~l:0.9 ~u:1.1 1.05)

let prop_vt_monotone =
  QCheck.Test.make ~name:"virtual time is monotone in instr" ~count:200
    QCheck.(pair (float_range 0.01 10.) (list (int_bound 1_000_000)))
    (fun (slope, increments) ->
      let vt = Vt.create ~start:Time.zero ~slope_ns_per_branch:slope () in
      let instr = ref 0L in
      List.for_all
        (fun inc ->
          let before = Vt.virt_at vt !instr in
          instr := Int64.add !instr (Int64.of_int inc);
          Time.(Vt.virt_at vt !instr >= before))
        increments)

let prop_vt_instr_for_virt_inverse =
  QCheck.Test.make ~name:"instr_for_virt is the least branch count reaching v"
    ~count:200
    QCheck.(pair (float_range 0.1 4.) (int_range 1 10_000_000))
    (fun (slope, v_ns) ->
      let vt = Vt.create ~start:Time.zero ~slope_ns_per_branch:slope () in
      let v = Time.ns v_ns in
      let i = Vt.instr_for_virt vt v in
      Time.(Vt.virt_at vt i >= v)
      && (Int64.compare i 0L = 0 || Time.(Vt.virt_at vt (Int64.sub i 1L) < v)))

(* --- Guest runtime ------------------------------------------------------------ *)

type recorded =
  | Sent of { seq : int; instr : int64; size : int }
  | Disk of { kind : [ `Read | `Write ]; bytes : int; tag : int; instr : int64 }
  | Dma of { bytes : int; tag : int; instr : int64 }

let make_guest ?pit_period app_handle =
  let events = ref [] in
  let sinks =
    {
      Guest.send =
        (fun ~seq ~instr ~dst:_ ~size ~payload:_ ->
          events := Sent { seq; instr; size } :: !events);
      disk =
        (fun ~kind ~bytes ~sequential:_ ~tag ~instr ->
          events := Disk { kind; bytes; tag; instr } :: !events);
      dma =
        (fun ~bytes ~tag ~instr ->
          events := Dma { bytes; tag; instr } :: !events);
    }
  in
  let vt = Vt.create ~start:Time.zero ~slope_ns_per_branch:1.0 () in
  let guest = Guest.create ~app:{ App.handle = app_handle } ~vt ?pit_period ~sinks () in
  (guest, events)

type Sw_net.Packet.payload += Dummy

let test_guest_idle_spins () =
  let guest, _ = make_guest (fun ~virt_now:_ _ -> []) in
  Guest.boot guest;
  Guest.run_branches guest 1000L;
  Alcotest.(check int64) "instr advances while idle" 1000L (Guest.instr guest);
  Alcotest.(check int64) "virt follows" (Time.ns 1000) (Guest.virt_now guest)

let test_guest_compute_then_send () =
  let guest, events =
    make_guest (fun ~virt_now:_ ev ->
        match ev with
        | App.Boot ->
            [
              App.Compute 500L;
              App.Send { dst = Sw_net.Address.Host 0; size = 64; payload = Dummy };
              App.Compute 200L;
              App.Send { dst = Sw_net.Address.Host 0; size = 65; payload = Dummy };
            ]
        | _ -> [])
  in
  Guest.boot guest;
  Guest.run_branches guest 1000L;
  match List.rev !events with
  | [ Sent { seq = 0; instr = 500L; size = 64 }; Sent { seq = 1; instr = 700L; size = 65 } ]
    ->
      Alcotest.(check int) "sent count" 2 (Guest.sent_packets guest)
  | _ -> Alcotest.fail "sends must fire at exact branch offsets with ordered seqs"

let test_guest_compute_spans_slices () =
  let guest, events =
    make_guest (fun ~virt_now:_ ev ->
        match ev with
        | App.Boot ->
            [
              App.Compute 1500L;
              App.Send { dst = Sw_net.Address.Host 0; size = 64; payload = Dummy };
            ]
        | _ -> [])
  in
  Guest.boot guest;
  Guest.run_branches guest 1000L;
  Alcotest.(check int) "not yet" 0 (List.length !events);
  Guest.run_branches guest 1000L;
  match !events with
  | [ Sent { instr = 1500L; _ } ] -> ()
  | _ -> Alcotest.fail "send fires mid second slice at branch 1500"

let test_guest_disk_sink () =
  let guest, events =
    make_guest (fun ~virt_now:_ ev ->
        match ev with
        | App.Boot -> [ App.Disk_read { bytes = 4096; sequential = true; tag = 9 } ]
        | App.Disk_done { tag } ->
            [ App.Disk_write { bytes = 512; sequential = false; tag = tag + 1 } ]
        | _ -> [])
  in
  Guest.boot guest;
  (match !events with
  | [ Disk { kind = `Read; bytes = 4096; tag = 9; instr = 0L } ] -> ()
  | _ -> Alcotest.fail "read issued at boot");
  Guest.inject guest (App.Disk_done { tag = 9 });
  match !events with
  | Disk { kind = `Write; bytes = 512; tag = 10; _ } :: _ -> ()
  | _ -> Alcotest.fail "write issued on completion"

let test_guest_dma_sink () =
  let guest, events =
    make_guest (fun ~virt_now:_ ev ->
        match ev with
        | App.Boot -> [ App.Compute 100L; App.Dma_transfer { bytes = 4096; tag = 3 } ]
        | App.Dma_done { tag } -> [ App.Dma_transfer { bytes = 64; tag = tag + 1 } ]
        | _ -> [])
  in
  Guest.boot guest;
  Guest.run_branches guest 1000L;
  (match List.rev !events with
  | [ Dma { bytes = 4096; tag = 3; instr = 100L } ] -> ()
  | _ -> Alcotest.fail "dma issued after compute");
  Guest.inject guest (App.Dma_done { tag = 3 });
  match !events with
  | Dma { bytes = 64; tag = 4; _ } :: _ -> ()
  | _ -> Alcotest.fail "next dma issued on completion"

let test_guest_timers_fire_in_order () =
  let fired = ref [] in
  let guest, _ =
    make_guest (fun ~virt_now:_ ev ->
        match ev with
        | App.Boot ->
            [
              App.Set_timer { after = Time.us 30; tag = 2 };
              App.Set_timer { after = Time.us 10; tag = 1 };
            ]
        | App.Timer { tag } ->
            fired := tag :: !fired;
            []
        | _ -> [])
  in
  Guest.boot guest;
  (match Guest.next_timer_virt guest with
  | Some d -> Alcotest.(check int64) "earliest deadline" (Time.us 10) d
  | None -> Alcotest.fail "timer expected");
  Guest.run_branches guest 100_000L;
  Guest.deliver_due_timers guest;
  Alcotest.(check (list int)) "deadline order" [ 1; 2 ] (List.rev !fired)

let test_guest_pit_ticks () =
  let ticks = ref 0 in
  let guest, _ =
    make_guest ~pit_period:(Time.us 100) (fun ~virt_now:_ ev ->
        match ev with
        | App.Tick ->
            incr ticks;
            []
        | _ -> [])
  in
  Guest.boot guest;
  Guest.run_branches guest 1_000_000L;
  (* 1 ms of virtual time with a 100 us PIT = 10 ticks. *)
  Guest.deliver_due_timers guest;
  Alcotest.(check int) "tick count" 10 !ticks

let test_guest_timer_at_injection_virt () =
  (* The virtual time an app observes at a timer event is the delivery exit's
     virtual time, not the deadline. *)
  let observed = ref Time.zero in
  let guest, _ =
    make_guest (fun ~virt_now ev ->
        match ev with
        | App.Boot -> [ App.Set_timer { after = Time.us 10; tag = 1 } ]
        | App.Timer _ ->
            observed := virt_now;
            []
        | _ -> [])
  in
  Guest.boot guest;
  Guest.run_branches guest 50_000L;
  Guest.deliver_due_timers guest;
  Alcotest.(check int64) "observed at exit" (Time.us 50) !observed

let prop_guest_deterministic_replicas =
  QCheck.Test.make
    ~name:"two replicas fed identical events emit identical sends" ~count:50
    QCheck.(list (int_range 1 50_000))
    (fun slices ->
      let app () ~virt_now:_ ev =
        match ev with
        | App.Boot ->
            [
              App.Compute 1000L;
              App.Send { dst = Sw_net.Address.Host 0; size = 10; payload = Dummy };
              App.Compute 5000L;
              App.Send { dst = Sw_net.Address.Host 0; size = 11; payload = Dummy };
            ]
        | _ -> []
      in
      let run () =
        let guest, events = make_guest (app ()) in
        Guest.boot guest;
        List.iter (fun s -> Guest.run_branches guest (Int64.of_int s)) slices;
        (Guest.instr guest, !events)
      in
      run () = run ())

(* --- Clocks (Sec. IV-B) -------------------------------------------------------- *)

let test_clocks_rdtsc () =
  let clocks = Sw_vm.Clocks.create ~tsc_hz:3.0e9 () in
  Alcotest.(check int64) "zero" 0L (Sw_vm.Clocks.rdtsc clocks ~virt:Time.zero);
  Alcotest.(check int64) "1 ms = 3M ticks" 3_000_000L
    (Sw_vm.Clocks.rdtsc clocks ~virt:(Time.ms 1));
  Alcotest.(check int64) "1 s = 3G ticks" 3_000_000_000L
    (Sw_vm.Clocks.rdtsc clocks ~virt:(Time.s 1))

let test_clocks_rtc () =
  let clocks = Sw_vm.Clocks.create () in
  Alcotest.(check int) "sub-second" 0
    (Sw_vm.Clocks.rtc_seconds clocks ~virt:(Time.ms 999));
  Alcotest.(check int) "2.5 s" 2 (Sw_vm.Clocks.rtc_seconds clocks ~virt:(Time.of_float_s 2.5))

let test_clocks_pit_counter () =
  let clocks = Sw_vm.Clocks.create ~pit_hz:1_000_000. ~pit_reload:1000 () in
  (* 1 MHz input, reload 1000: the counter decrements once per us and wraps
     every ms. *)
  Alcotest.(check int) "full" 1000 (Sw_vm.Clocks.pit_counter clocks ~virt:Time.zero);
  Alcotest.(check int) "quarter" 750
    (Sw_vm.Clocks.pit_counter clocks ~virt:(Time.us 250));
  Alcotest.(check int) "wrapped" 1000
    (Sw_vm.Clocks.pit_counter clocks ~virt:(Time.ms 1));
  Alcotest.(check int64) "interrupt period" (Time.ms 1)
    (Sw_vm.Clocks.pit_interrupt_period clocks)

let prop_clocks_deterministic =
  QCheck.Test.make ~name:"clock readings are a function of virtual time alone"
    ~count:200
    QCheck.(int_bound 1_000_000_000)
    (fun v ->
      let virt = Time.ns v in
      let c1 = Sw_vm.Clocks.create () and c2 = Sw_vm.Clocks.create () in
      Sw_vm.Clocks.rdtsc c1 ~virt = Sw_vm.Clocks.rdtsc c2 ~virt
      && Sw_vm.Clocks.pit_counter c1 ~virt = Sw_vm.Clocks.pit_counter c2 ~virt
      && Sw_vm.Clocks.rtc_seconds c1 ~virt = Sw_vm.Clocks.rtc_seconds c2 ~virt)

let prop_pit_counter_range =
  QCheck.Test.make ~name:"PIT counter stays within (0, reload]" ~count:200
    QCheck.(pair (int_range 1 100_000) (int_bound 1_000_000_000))
    (fun (reload, v) ->
      let clocks = Sw_vm.Clocks.create ~pit_reload:reload () in
      let c = Sw_vm.Clocks.pit_counter clocks ~virt:(Time.ns v) in
      c > 0 && c <= reload)

let () =
  Alcotest.run "sw_vm"
    [
      ( "virtual-time",
        [
          Alcotest.test_case "linear" `Quick test_vt_linear;
          Alcotest.test_case "fractional slope" `Quick test_vt_fractional_slope;
          Alcotest.test_case "slope change is continuous" `Quick
            test_vt_set_slope_continuous;
          Alcotest.test_case "rejects pre-segment reads" `Quick test_vt_rejects_past;
          Alcotest.test_case "clamp" `Quick test_vt_clamp;
          QCheck_alcotest.to_alcotest prop_vt_monotone;
          QCheck_alcotest.to_alcotest prop_vt_instr_for_virt_inverse;
        ] );
      ( "guest",
        [
          Alcotest.test_case "idle spins" `Quick test_guest_idle_spins;
          Alcotest.test_case "compute then send" `Quick test_guest_compute_then_send;
          Alcotest.test_case "compute spans slices" `Quick
            test_guest_compute_spans_slices;
          Alcotest.test_case "disk sink" `Quick test_guest_disk_sink;
          Alcotest.test_case "dma sink" `Quick test_guest_dma_sink;
          Alcotest.test_case "timers in deadline order" `Quick
            test_guest_timers_fire_in_order;
          Alcotest.test_case "pit ticks" `Quick test_guest_pit_ticks;
          Alcotest.test_case "timer observes exit virt" `Quick
            test_guest_timer_at_injection_virt;
          QCheck_alcotest.to_alcotest prop_guest_deterministic_replicas;
        ] );
      ( "clocks",
        [
          Alcotest.test_case "rdtsc" `Quick test_clocks_rdtsc;
          Alcotest.test_case "rtc" `Quick test_clocks_rtc;
          Alcotest.test_case "pit counter" `Quick test_clocks_pit_counter;
          QCheck_alcotest.to_alcotest prop_clocks_deterministic;
          QCheck_alcotest.to_alcotest prop_pit_counter_range;
        ] );
    ]
