(* Tests for sw_obs: registry semantics (counter/sum/gauge/histogram, path
   validation), bucket indexing, the snapshot partition-merge property that
   parallel benches lean on, deterministic JSON export, the trace ring
   (ordering, wraparound, lazy emission, spans), and a fig4-style end-to-end
   check that merged snapshots are byte-identical under -j 1 and -j 4. *)

module Registry = Sw_obs.Registry
module Snapshot = Sw_obs.Snapshot
module Buckets = Sw_obs.Buckets
module Event = Sw_obs.Event
module Trace = Sw_obs.Trace
module Export = Sw_obs.Export

(* --- Registry ------------------------------------------------------------- *)

let test_counter () =
  let r = Registry.create () in
  let c = Registry.counter r "a.b.count" in
  Registry.Counter.incr c;
  Registry.Counter.add c 41;
  Alcotest.(check int) "value" 42 (Registry.Counter.value c);
  Alcotest.(check int) "snapshot" 42
    (Snapshot.counter (Registry.snapshot r) "a.b.count");
  (* Handles are create-or-return: same path, same cell. *)
  Registry.Counter.incr (Registry.counter r "a.b.count");
  Alcotest.(check int) "shared cell" 43 (Registry.Counter.value c);
  Registry.Counter.reset c;
  Alcotest.(check int) "reset in place" 0 (Registry.Counter.value c);
  Alcotest.(check int) "snapshot after reset" 0
    (Snapshot.counter (Registry.snapshot r) "a.b.count")

let test_sum_gauge () =
  let r = Registry.create () in
  let s = Registry.sum r "credits" in
  Registry.Sum.add s 0.5;
  Registry.Sum.add s 0.25;
  Alcotest.(check (float 0.)) "sum accumulates" 0.75 (Registry.Sum.value s);
  let g = Registry.gauge r "depth" in
  Registry.Gauge.observe g 3.;
  Registry.Gauge.observe g 7.;
  Registry.Gauge.observe g 5.;
  Alcotest.(check (float 0.)) "gauge is a watermark" 7.
    (Registry.Gauge.value g)

let test_gauge_observe_int () =
  (* The unboxed int path and the float path share one watermark; snapshots
     report the max across both. *)
  let r = Registry.create () in
  let g = Registry.gauge r "depth" in
  Registry.Gauge.observe_int g 4;
  Registry.Gauge.observe_int g 9;
  Registry.Gauge.observe_int g 2;
  Alcotest.(check (float 0.)) "int watermark" 9. (Registry.Gauge.value g);
  Registry.Gauge.observe g 11.5;
  Alcotest.(check (float 0.)) "float path can raise it" 11.5
    (Registry.Gauge.value g);
  Registry.Gauge.observe_int g 11;
  Alcotest.(check (float 0.)) "lower int does not" 11.5
    (Registry.Gauge.value g);
  match Sw_obs.Snapshot.find (Registry.snapshot r) "depth" with
  | Some (Sw_obs.Snapshot.Gauge v) ->
      Alcotest.(check (float 0.)) "snapshot sees merged watermark" 11.5 v
  | _ -> Alcotest.fail "gauge missing from snapshot"

let test_enabled_switch () =
  (* [enabled] is the one-branch producer contract: on by default, and the
     instruments keep working either way — producers choose to skip. *)
  let r = Registry.create () in
  Alcotest.(check bool) "on at creation" true (Registry.enabled r);
  Registry.set_enabled r false;
  Alcotest.(check bool) "off" false (Registry.enabled r);
  let c = Registry.counter r "hits" in
  if Registry.enabled r then Registry.Counter.incr c;
  Alcotest.(check int) "producer skipped the bump" 0 (Registry.Counter.value c);
  Registry.set_enabled r true;
  if Registry.enabled r then Registry.Counter.incr c;
  Alcotest.(check int) "and takes it when on" 1 (Registry.Counter.value c)

let test_histogram () =
  let r = Registry.create () in
  let h = Registry.histogram r "lat" in
  Alcotest.(check int64) "max sentinel" Int64.min_int (Registry.Histogram.max h);
  Alcotest.(check int64) "min sentinel" Int64.max_int (Registry.Histogram.min h);
  List.iter (Registry.Histogram.observe h) [ 10L; 1_000L; 10L; 999_999L ];
  Alcotest.(check int) "count" 4 (Registry.Histogram.count h);
  Alcotest.(check int64) "total" 1_001_019L (Registry.Histogram.total h);
  Alcotest.(check int64) "max" 999_999L (Registry.Histogram.max h);
  Alcotest.(check int64) "min" 10L (Registry.Histogram.min h);
  match Snapshot.histogram (Registry.snapshot r) "lat" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some hist ->
      Alcotest.(check int) "snapshot count" 4 hist.Snapshot.count;
      let bucket_total =
        List.fold_left (fun acc (_, n) -> acc + n) 0 hist.Snapshot.buckets
      in
      Alcotest.(check int) "buckets cover every observation" 4 bucket_total

let test_path_validation () =
  let r = Registry.create () in
  Alcotest.check_raises "empty path"
    (Invalid_argument "Registry: empty metric path") (fun () ->
      ignore (Registry.counter r ""));
  (match Registry.counter r "ok.path_-0" with
  | _ -> ());
  (try
     ignore (Registry.counter r "bad path");
     Alcotest.fail "space accepted"
   with Invalid_argument _ -> ());
  ignore (Registry.sum r "dual");
  try
    ignore (Registry.counter r "dual");
    Alcotest.fail "kind mismatch accepted"
  with Invalid_argument _ -> ()

(* --- Buckets -------------------------------------------------------------- *)

let test_bucket_bounds_monotone () =
  for i = 1 to Buckets.count - 1 do
    if Int64.compare (Buckets.bound (i - 1)) (Buckets.bound i) >= 0 then
      Alcotest.fail "bucket bounds must be strictly increasing"
  done;
  Alcotest.(check int64) "catch-all" Int64.max_int
    (Buckets.bound (Buckets.count - 1))

let prop_bucket_index =
  QCheck.Test.make ~count:1000 ~name:"index places a value within its bounds"
    QCheck.(int_bound 1_000_000_000)
    (fun n ->
      let v = Int64.of_int n in
      let i = Buckets.index v in
      let upper_ok = Int64.compare v (Buckets.bound i) <= 0 in
      let lower_ok = i = 0 || Int64.compare (Buckets.bound (i - 1)) v < 0 in
      upper_ok && lower_ok)

(* --- Snapshot merge: arbitrary partitions --------------------------------- *)

(* One recorded operation. Sum payloads are quarter-integers, so float
   addition is exact and the partition property can demand byte equality. *)
type op =
  | Count of int * int  (* path index, amount *)
  | Credit of int * int  (* path index, quarters *)
  | Water of int * int  (* path index, level *)
  | Observe of int * int  (* path index, ns *)

let apply r = function
  | Count (p, n) ->
      Registry.Counter.add (Registry.counter r (Printf.sprintf "c%d" p)) n
  | Credit (p, q) ->
      Registry.Sum.add
        (Registry.sum r (Printf.sprintf "s%d" p))
        (float_of_int q /. 4.)
  | Water (p, v) ->
      Registry.Gauge.observe
        (Registry.gauge r (Printf.sprintf "g%d" p))
        (float_of_int v)
  | Observe (p, v) ->
      Registry.Histogram.observe
        (Registry.histogram r (Printf.sprintf "h%d" p))
        (Int64.of_int v)

let op_gen =
  QCheck.Gen.(
    let path = int_bound 3 in
    oneof
      [
        map2 (fun p n -> Count (p, n)) path (int_bound 100);
        map2 (fun p q -> Credit (p, q)) path (int_bound 40);
        map2 (fun p v -> Water (p, v)) path (int_bound 1000);
        map2 (fun p v -> Observe (p, v)) path (int_bound 1_000_000);
      ])

let prop_snapshot_merge_partitions =
  QCheck.Test.make ~count:300
    ~name:"merging per-chunk registries over any partition equals one stream"
    QCheck.(
      pair
        (make ~print:(fun ops -> string_of_int (List.length ops))
           (Gen.list_size Gen.(1 -- 80) op_gen))
        (list_of_size Gen.(0 -- 6) (int_bound 12)))
    (fun (ops, cut_sizes) ->
      let whole = Registry.create () in
      List.iter (apply whole) ops;
      let chunks =
        let rec take n = function
          | [] -> ([], [])
          | l when n = 0 -> ([], l)
          | x :: tl ->
              let a, b = take (n - 1) tl in
              (x :: a, b)
        in
        let rec go rest = function
          | [] -> [ rest ]
          | n :: ns ->
              let chunk, rest' = take n rest in
              chunk :: go rest' ns
        in
        go ops cut_sizes
      in
      let merged =
        Snapshot.merge_all
          (List.map
             (fun chunk ->
               let r = Registry.create () in
               List.iter (apply r) chunk;
               Registry.snapshot r)
             chunks)
      in
      String.equal
        (Export.to_json_string (Registry.snapshot whole))
        (Export.to_json_string merged))

let test_merge_kind_mismatch () =
  let a = Registry.create () and b = Registry.create () in
  ignore (Registry.counter a "x");
  ignore (Registry.gauge b "x");
  try
    ignore (Snapshot.merge (Registry.snapshot a) (Registry.snapshot b));
    Alcotest.fail "kind mismatch must not merge"
  with Invalid_argument _ -> ()

(* --- Export --------------------------------------------------------------- *)

let test_export_shape () =
  let r = Registry.create () in
  Registry.Counter.add (Registry.counter r "net.delivered") 3;
  Registry.Sum.add (Registry.sum r "vm0.median.source.r1") 1.5;
  Alcotest.(check string) "sorted, compact JSON"
    "{\"net.delivered\":{\"kind\":\"counter\",\"value\":3},\"vm0.median.source.r1\":{\"kind\":\"sum\",\"value\":1.5}}"
    (Export.to_json_string (Registry.snapshot r))

let test_export_matches_report () =
  (* The runner-side serializer and sw_obs's own exporter agree byte for
     byte, so either end of the pipeline can be compared with String.equal. *)
  let r = Registry.create () in
  Registry.Counter.add (Registry.counter r "a") 7;
  Registry.Gauge.observe (Registry.gauge r "b") 2.25;
  Registry.Histogram.observe (Registry.histogram r "c") 12_345L;
  let snapshot = Registry.snapshot r in
  Alcotest.(check string) "exporters agree"
    (Export.to_json_string snapshot)
    (Sw_runner.Report.to_string (Sw_runner.Report.of_metrics snapshot))

(* --- Trace ---------------------------------------------------------------- *)

let delivered seq =
  Event.Packet_delivered
    { vm = 0; replica = 0; seq; virt_ns = Int64.of_int (seq * 1000) }

let test_trace_disabled_records_nothing () =
  let tr = Trace.create () in
  Alcotest.(check bool) "fresh trace disabled" false (Trace.enabled tr);
  Alcotest.(check bool) "absent sink inactive" false (Trace.active None);
  Alcotest.(check bool) "disabled sink inactive" false (Trace.active (Some tr));
  Trace.emit tr ~at_ns:1L (delivered 1);
  Alcotest.(check int) "emit on disabled trace is a no-op" 0 (Trace.length tr);
  Trace.enable tr;
  Alcotest.(check bool) "enabled sink active" true (Trace.active (Some tr));
  Trace.emit tr ~at_ns:2L (delivered 2);
  Alcotest.(check int) "enabled trace records" 1 (Trace.length tr)

let test_trace_order_and_wraparound () =
  let tr = Trace.create ~capacity:4 () in
  Trace.enable tr;
  for seq = 1 to 6 do
    Trace.emit tr ~at_ns:(Int64.of_int seq) (delivered seq)
  done;
  Alcotest.(check int) "length capped" 4 (Trace.length tr);
  let seqs =
    List.filter_map
      (fun e ->
        match e.Trace.event with
        | Event.Packet_delivered { seq; _ } -> Some seq
        | _ -> None)
      (Trace.entries tr)
  in
  Alcotest.(check (list int)) "oldest dropped, order kept" [ 3; 4; 5; 6 ] seqs;
  let folded = Trace.fold (fun acc _ -> acc + 1) 0 tr in
  Alcotest.(check int) "fold sees the same entries" 4 folded;
  let first = ref None in
  Trace.iter tr (fun e -> if !first = None then first := Some e.Trace.at_ns);
  Alcotest.(check (option int64)) "iter starts at the oldest" (Some 3L) !first

let test_trace_span () =
  let tr = Trace.create () in
  Trace.enable tr;
  let clock = ref 0L in
  let now () = !clock in
  let result =
    Trace.span tr ~now ~name:"work" (fun () ->
        clock := 250L;
        17)
  in
  Alcotest.(check int) "span returns f's result" 17 result;
  (match Trace.entries tr with
  | [ { event = Event.Span_begin { name = "work" }; _ };
      { event = Event.Span_end { name = "work"; elapsed_ns = 250L }; _ }
    ] ->
      ()
  | _ -> Alcotest.fail "expected matching Span_begin/Span_end");
  Trace.clear tr;
  (try
     Trace.span tr ~now ~name:"boom" (fun () -> failwith "inner") |> ignore
   with Failure _ -> ());
  match List.rev (Trace.entries tr) with
  | { event = Event.Span_end { name = "boom"; _ }; _ } :: _ -> ()
  | _ -> Alcotest.fail "span must close even when f raises"

(* --- Fig. 4-style end-to-end determinism ---------------------------------- *)

let test_scenario_snapshot_bytes_j1_j4 () =
  (* Down-scaled fig4 fleet: four scenario simulations, merged snapshot
     exported to JSON, sequential vs 4-worker pool. *)
  let module Scenario = Sw_attack.Scenario in
  let module Runner = Sw_runner.Runner in
  let module Pool = Sw_runner.Pool in
  let base = { Scenario.default with Scenario.duration = Sw_sim.Time.s 2 } in
  let specs =
    [
      ("sw/no-victim", { base with Scenario.victim = false });
      ("sw/victim", { base with Scenario.victim = true });
      ("base/no-victim", { base with Scenario.baseline = true; victim = false });
      ("base/victim", { base with Scenario.baseline = true; victim = true });
    ]
  in
  let jobs () =
    List.map
      (fun (key, spec) ->
        Sw_runner.Job.make ~key (fun ~seed:_ ->
            (Scenario.run spec).Scenario.metrics))
      specs
  in
  let export outcomes =
    Export.to_json_string (Snapshot.merge_all (Runner.successes outcomes))
  in
  let seq = export (Runner.map (jobs ())) in
  let par =
    export (Pool.with_pool ~workers:4 (fun pool -> Runner.map ~pool (jobs ())))
  in
  Alcotest.(check bool) "snapshot non-trivial" false
    (String.equal seq (Export.to_json_string Snapshot.empty));
  Alcotest.(check string) "merged snapshot bytes identical under -j 4" seq par

let () =
  Alcotest.run "sw_obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "sum and gauge" `Quick test_sum_gauge;
          Alcotest.test_case "gauge observe_int" `Quick test_gauge_observe_int;
          Alcotest.test_case "enabled switch" `Quick test_enabled_switch;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "path validation" `Quick test_path_validation;
        ] );
      ( "buckets",
        [
          Alcotest.test_case "bounds monotone" `Quick test_bucket_bounds_monotone;
          QCheck_alcotest.to_alcotest prop_bucket_index;
        ] );
      ( "merge",
        [
          QCheck_alcotest.to_alcotest prop_snapshot_merge_partitions;
          Alcotest.test_case "kind mismatch rejected" `Quick
            test_merge_kind_mismatch;
        ] );
      ( "export",
        [
          Alcotest.test_case "shape" `Quick test_export_shape;
          Alcotest.test_case "matches runner serializer" `Quick
            test_export_matches_report;
        ] );
      ( "trace",
        [
          Alcotest.test_case "lazy emission" `Quick
            test_trace_disabled_records_nothing;
          Alcotest.test_case "order and wraparound" `Quick
            test_trace_order_and_wraparound;
          Alcotest.test_case "span" `Quick test_trace_span;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig4-style merged snapshot -j1 = -j4" `Slow
            test_scenario_snapshot_bytes_j1_j4;
        ] );
    ]
