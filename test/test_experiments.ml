(* Tests for the experiment drivers — including regression checks that keep
   the reproduced numbers in the paper's ballpark (shape, not absolutes). *)

module Ft = Sw_experiments.File_transfer
module Nb = Sw_experiments.Nfs_bench
module Pb = Sw_experiments.Parsec_bench

let test_http_ratio_shape () =
  let size_bytes = 102_400 in
  let b = Ft.run ~protocol:Ft.Http ~stopwatch:false ~size_bytes ~runs:1 () in
  let s = Ft.run ~protocol:Ft.Http ~stopwatch:true ~size_bytes ~runs:1 () in
  let ratio = s.Ft.elapsed_ms /. b.Ft.elapsed_ms in
  (* Paper: < 2.8x for >= 100 KB. Allow a generous band around it. *)
  if ratio < 1.5 || ratio > 4.0 then
    Alcotest.failf "HTTP 100KB ratio %.2f outside the paper's ballpark" ratio

let test_udp_competitive () =
  let size_bytes = 1_048_576 in
  let b = Ft.run ~protocol:Ft.Udp ~stopwatch:false ~size_bytes ~runs:1 () in
  let s = Ft.run ~protocol:Ft.Udp ~stopwatch:true ~size_bytes ~runs:1 () in
  let ratio = s.Ft.elapsed_ms /. b.Ft.elapsed_ms in
  (* Paper: competitive with baseline for large files. *)
  if ratio > 1.5 then Alcotest.failf "UDP 1MB ratio %.2f not competitive" ratio

let test_udp_beats_http_under_stopwatch () =
  let size_bytes = 1_048_576 in
  let http = Ft.run ~protocol:Ft.Http ~stopwatch:true ~size_bytes ~runs:1 () in
  let udp = Ft.run ~protocol:Ft.Udp ~stopwatch:true ~size_bytes ~runs:1 () in
  if udp.Ft.elapsed_ms >= http.Ft.elapsed_ms then
    Alcotest.fail "NAK-based transport must beat TCP under StopWatch"

let test_runs_averaging () =
  let o = Ft.run ~protocol:Ft.Udp ~stopwatch:false ~size_bytes:10_240 ~runs:3 () in
  Alcotest.(check int) "three runs" 3 (List.length o.Ft.runs);
  let mean = List.fold_left ( +. ) 0. o.Ft.runs /. 3. in
  Alcotest.(check (float 1e-9)) "mean" mean o.Ft.elapsed_ms

let test_nfs_ratio_shape () =
  let b = Nb.run ~stopwatch:false ~rate_per_s:50. ~ops:200 () in
  let s = Nb.run ~stopwatch:true ~rate_per_s:50. ~ops:200 () in
  Alcotest.(check int) "baseline completes" 200 b.Nb.completed;
  Alcotest.(check int) "stopwatch completes" 200 s.Nb.completed;
  let ratio = s.Nb.mean_latency_ms /. b.Nb.mean_latency_ms in
  (* Paper: <= 2.7x. *)
  if ratio < 1.5 || ratio > 3.5 then
    Alcotest.failf "NFS ratio %.2f outside the paper's ballpark" ratio

let test_parsec_baselines_match_paper () =
  (* The calibration targets Fig. 7(a)'s baseline bars within 15%. *)
  List.iter2
    (fun profile expected_ms ->
      let o = Pb.run ~stopwatch:false profile in
      let err = Float.abs (o.Pb.runtime_ms -. expected_ms) /. expected_ms in
      if err > 0.15 then
        Alcotest.failf "%s baseline %.0f ms vs paper %.0f ms (%.0f%% off)"
          profile.Sw_apps.Parsec.name o.Pb.runtime_ms expected_ms (err *. 100.))
    Sw_apps.Parsec.all_profiles
    [ 171.; 177.; 1530.; 3730.; 290. ]

let test_parsec_overhead_shape () =
  (* Max overhead at most ~2.6x (paper: 2.3x at blackscholes), and overhead
     correlates with disk interrupts. *)
  let profiles = [ Sw_apps.Parsec.ferret; Sw_apps.Parsec.dedup ] in
  List.iter
    (fun profile ->
      let b = Pb.run ~stopwatch:false profile in
      let s = Pb.run ~stopwatch:true profile in
      let ratio = s.Pb.runtime_ms /. b.Pb.runtime_ms in
      if ratio < 1.1 || ratio > 2.7 then
        Alcotest.failf "%s overhead %.2f outside band" profile.Sw_apps.Parsec.name
          ratio;
      Alcotest.(check int)
        "interrupt count matches profile" profile.Sw_apps.Parsec.io_count
        s.Pb.disk_interrupts)
    profiles

let test_parsec_overhead_correlates_with_interrupts () =
  let extra profile =
    let b = Pb.run ~stopwatch:false profile in
    let s = Pb.run ~stopwatch:true profile in
    s.Pb.runtime_ms -. b.Pb.runtime_ms
  in
  let ferret = extra Sw_apps.Parsec.ferret in
  let dedup = extra Sw_apps.Parsec.dedup in
  (* dedup has ~9.5x the interrupts of ferret; its absolute penalty must be
     several times larger. *)
  if not (dedup > 4. *. ferret) then
    Alcotest.failf "absolute penalty must scale with interrupts (%f vs %f)" dedup
      ferret

let test_tables_capture () =
  (* The printers take ?fmt, so output is assertable without scraping
     stdout. *)
  let module Tables = Sw_experiments.Tables in
  let buf = Buffer.create 128 in
  let fmt = Format.formatter_of_buffer buf in
  Tables.row ~fmt ~width:6 [ "a"; "bb" ];
  Tables.header ~fmt ~width:4 [ "x" ];
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  if not (String.length out > 0 && String.contains out 'a') then
    Alcotest.fail "row output missing";
  (* Header underlines with dashes. *)
  if not (String.contains out '-') then Alcotest.fail "header rule missing";
  (* Default formatter still works (smoke; goes to stdout). *)
  Tables.subsection "capture check"

let test_outcome_metrics_snapshot () =
  (* Experiment outcomes expose the cloud's metrics snapshot; the bespoke
     counters they used to carry are now served from it. *)
  let o = Nb.run ~stopwatch:true ~rate_per_s:50. ~ops:40 () in
  let m = o.Nb.metrics in
  if Sw_obs.Snapshot.is_empty m then Alcotest.fail "metrics snapshot empty";
  Alcotest.(check bool) "sim event counter present" true
    (Sw_obs.Snapshot.counter m "sim.events.fired" > 0);
  Alcotest.(check bool) "network deliveries present" true
    (Sw_obs.Snapshot.counter m "net.delivered" > 0)

let () =
  Alcotest.run "sw_experiments"
    [
      ( "file-transfer",
        [
          Alcotest.test_case "http ratio shape" `Slow test_http_ratio_shape;
          Alcotest.test_case "udp competitive" `Slow test_udp_competitive;
          Alcotest.test_case "udp beats http under stopwatch" `Slow
            test_udp_beats_http_under_stopwatch;
          Alcotest.test_case "averaging" `Quick test_runs_averaging;
        ] );
      ( "nfs",
        [ Alcotest.test_case "ratio shape" `Slow test_nfs_ratio_shape ] );
      ( "observability",
        [
          Alcotest.test_case "tables capture via ?fmt" `Quick
            test_tables_capture;
          Alcotest.test_case "outcome carries metrics snapshot" `Quick
            test_outcome_metrics_snapshot;
        ] );
      ( "parsec",
        [
          Alcotest.test_case "baselines match paper" `Slow
            test_parsec_baselines_match_paper;
          Alcotest.test_case "overhead shape" `Slow test_parsec_overhead_shape;
          Alcotest.test_case "penalty correlates with interrupts" `Slow
            test_parsec_overhead_correlates_with_interrupts;
        ] );
    ]
