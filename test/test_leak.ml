(* Tests for the leak-detection toolkit: incomplete-beta / probit goldens,
   Welch's t and Cohen's d against closed-form values, binned mutual
   information calibration (independent ≈ 0, identical ≈ H(X)), KS
   p-values, false-positive calibration of the whole battery on
   same-distribution pairs, shifted-mean detection, byte-identity of the
   detector API with the historical Distinguisher wrappers, lineage
   observation extraction on a synthetic trace, and the audit driver's
   verdict, attribution and counters. *)

module Special = Sw_stats.Special
module Ttest = Sw_stats.Ttest
module Mi = Sw_stats.Mutual_info
module Ks = Sw_stats.Ks
module Prng = Sw_sim.Prng
module Detector = Sw_leak.Detector
module Audit = Sw_leak.Audit
module Trace = Sw_obs.Trace
module Event = Sw_obs.Event
module Lineage = Sw_obs.Lineage
module Registry = Sw_obs.Registry
module Snapshot = Sw_obs.Snapshot

let close ?(eps = 1e-6) name expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9g, got %.9g" name expected actual

let draw rng n ~mean ~stddev =
  Array.init n (fun _ -> Prng.normal rng ~mean ~stddev)

(* --- Special functions --------------------------------------------------- *)

let test_betai () =
  (* I_x(1,1) = x. *)
  List.iter
    (fun x -> close ~eps:1e-12 "I_x(1,1)" x (Special.betai 1. 1. x))
    [ 0.; 0.123; 0.5; 0.987; 1. ];
  (* I_0.5(a,a) = 0.5 by symmetry. *)
  close ~eps:1e-10 "I_.5(.5,.5)" 0.5 (Special.betai 0.5 0.5 0.5);
  close ~eps:1e-10 "I_.5(3,3)" 0.5 (Special.betai 3. 3. 0.5);
  (* Reflection: I_x(a,b) = 1 - I_{1-x}(b,a). *)
  let a, b, x = (2.5, 4., 0.3) in
  close ~eps:1e-10 "reflection"
    (1. -. Special.betai b a (1. -. x))
    (Special.betai a b x);
  (* I_x(1,2) = 1 - (1-x)^2. *)
  close ~eps:1e-10 "I_.25(1,2)" (1. -. (0.75 *. 0.75)) (Special.betai 1. 2. 0.25)

let test_probit () =
  close ~eps:1e-9 "norm_cdf 0" 0.5 (Special.norm_cdf 0.);
  close ~eps:2e-7 "norm_cdf 1.96" 0.975 (Special.norm_cdf 1.959964);
  List.iter
    (fun x -> close ~eps:1e-6 "probit roundtrip" x
        (Special.probit (Special.norm_cdf x)))
    [ -2.3; -0.5; 0.; 1.3; 3.1 ]

(* --- Welch / Cohen ------------------------------------------------------- *)

let test_welch_golden () =
  (* Equal variances 2.5, means 3 vs 4, n = 5: t = -1, Welch df = 8. *)
  let a = [| 1.; 2.; 3.; 4.; 5. |] and b = [| 2.; 3.; 4.; 5.; 6. |] in
  let r = Ttest.welch a b in
  close ~eps:1e-12 "t" (-1.) r.Ttest.t_stat;
  close ~eps:1e-9 "df" 8. r.Ttest.df;
  (* Two-sided p for |t| = 1 at 8 df (reference value 0.346594). *)
  close ~eps:1e-4 "p" 0.346594 r.Ttest.p_value;
  close ~eps:1e-9 "d" (-1. /. sqrt 2.5) (Ttest.cohens_d a b)

let test_welch_degenerate () =
  let r = Ttest.welch [| 2.; 2. |] [| 2.; 2. |] in
  close "equal constants p" 1. r.Ttest.p_value;
  close "equal constants t" 0. r.Ttest.t_stat;
  let r = Ttest.welch [| 1.; 1. |] [| 2.; 2. |] in
  close "distinct constants p" 0. r.Ttest.p_value;
  Alcotest.(check bool) "distinct constants t" true
    (Float.is_integer r.Ttest.t_stat = false || Float.abs r.Ttest.t_stat = infinity)

(* --- Mutual information -------------------------------------------------- *)

let test_mi_independent () =
  (* Same distribution on both sides: I(C; X) should sit at the noise
     floor and the G-test should not reject. *)
  let rng = Prng.create 7L in
  let null = draw rng 600 ~mean:10. ~stddev:2. in
  let alt = draw rng 600 ~mean:10. ~stddev:2. in
  let m = Mi.against_labels ~null ~alt () in
  Alcotest.(check bool)
    (Printf.sprintf "independent mi small (%g bits)" m.Mi.mi_bits)
    true
    (Float.abs m.Mi.mi_bits < 0.05);
  Alcotest.(check bool)
    (Printf.sprintf "independent p large (%g)" m.Mi.p_value)
    true (m.Mi.p_value > 0.01)

let test_mi_identical () =
  (* A stream paired with itself carries its full entropy. *)
  let rng = Prng.create 11L in
  let x = draw rng 512 ~mean:0. ~stddev:1. in
  let m = Mi.paired x x in
  let h = Mi.entropy_bits x in
  close ~eps:1e-9 "I(X;X) = H(X)" h m.Mi.plugin_bits;
  Alcotest.(check bool) "entropy near log2 bins" true
    (h > 0.9 *. Float.log2 (float_of_int m.Mi.bins))

let test_mi_separated () =
  let rng = Prng.create 13L in
  let null = draw rng 400 ~mean:0. ~stddev:1. in
  let alt = draw rng 400 ~mean:4. ~stddev:1. in
  let m = Mi.against_labels ~null ~alt () in
  Alcotest.(check bool) "separated mi large" true (m.Mi.mi_bits > 0.5);
  Alcotest.(check bool) "separated p tiny" true (m.Mi.p_value < 1e-6)

(* --- KS p-value ---------------------------------------------------------- *)

let test_ks_p_value () =
  let xs = Array.init 200 (fun i -> float_of_int i) in
  Alcotest.(check bool) "identical p ~ 1" true (Ks.p_value xs xs > 0.99);
  let ys = Array.map (fun v -> v +. 1000.) xs in
  Alcotest.(check bool) "disjoint p ~ 0" true (Ks.p_value xs ys < 1e-10)

(* --- Battery calibration -------------------------------------------------- *)

(* Same-distribution pairs: each p-value detector's false-positive count
   over [trials] runs must stay within a generous binomial band around
   [alpha * trials] (mean 2 at alpha = 0.01, sigma ~ 1.4; 12 is well past
   five sigma). Deterministic seed, so this never flakes. *)
let test_battery_false_positives () =
  let trials = 200 in
  let rng = Prng.create 0xCA11B8L in
  let counts = Hashtbl.create 8 in
  for _ = 1 to trials do
    let null = draw rng 60 ~mean:5. ~stddev:1.5 in
    let alt = draw rng 60 ~mean:5. ~stddev:1.5 in
    List.iter
      (fun (d : Detector.t) ->
        let r = d.Detector.verdict ~null ~alt in
        if r.Detector.leak then
          Hashtbl.replace counts d.Detector.name
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts d.Detector.name)))
      Detector.all
  done;
  List.iter
    (fun (d : Detector.t) ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts d.Detector.name) in
      if c > 12 then
        Alcotest.failf "%s flagged %d of %d same-distribution pairs"
          d.Detector.name c trials)
    Detector.all

let test_battery_shifted_mean () =
  let rng = Prng.create 0x5E1F7L in
  let null = draw rng 150 ~mean:10. ~stddev:1. in
  let alt = draw rng 150 ~mean:11. ~stddev:1. in
  List.iter
    (fun (d : Detector.t) ->
      let r = d.Detector.verdict ~null ~alt in
      Alcotest.(check bool)
        (Printf.sprintf "%s flags a 1-sigma mean shift (p=%g effect=%g)"
           d.Detector.name r.Detector.p_value r.Detector.effect)
        true r.Detector.leak)
    Detector.all

let test_undersized_verdict () =
  List.iter
    (fun (d : Detector.t) ->
      let r = d.Detector.verdict ~null:[| 1.; 2. |] ~alt:[| 1.; 2. |] in
      Alcotest.(check bool) (d.Detector.name ^ " skipped") true
        (Detector.skipped r);
      Alcotest.(check bool) (d.Detector.name ^ " no leak") false r.Detector.leak)
    Detector.all

(* --- Byte-identity with the historical Distinguisher wrappers ------------ *)

let test_distinguisher_identity () =
  let rng = Prng.create 0xD157L in
  let null = draw rng 80 ~mean:20. ~stddev:3. in
  let alt = draw rng 80 ~mean:22. ~stddev:4. in
  let ks = Detector.ks () and chi = Detector.chi_square () in
  List.iter
    (fun confidence ->
      let via_wrapper =
        Sw_attack.Distinguisher.ks_observations_needed ~null ~alt ~confidence
      in
      let via_detector = ks.Detector.observations_needed ~null ~alt ~confidence in
      Alcotest.(check bool)
        (Printf.sprintf "ks identical at %.2f" confidence)
        true
        (Int64.equal (Int64.bits_of_float via_wrapper)
           (Int64.bits_of_float via_detector));
      let via_wrapper =
        Sw_attack.Distinguisher.empirical ~null ~alt ~confidence ()
      in
      let via_detector =
        (Detector.chi_square ~bins:10 ()).Detector.observations_needed ~null
          ~alt ~confidence
      in
      Alcotest.(check bool)
        (Printf.sprintf "chi identical at %.2f" confidence)
        true
        (Int64.equal (Int64.bits_of_float via_wrapper)
           (Int64.bits_of_float via_detector));
      ignore (chi.Detector.observations_needed ~null ~alt ~confidence))
    Detector.confidence_grid

(* --- Lineage observation extraction --------------------------------------- *)

let entry at_ns event = { Trace.at_ns; event }

(* Two complete chains for vm 0 plus egress activity: median-adoption lag
   (propose -> adopt anchored at the replica's own proposal), one delivery
   gap, two ingress latencies, two egress release gaps — all in
   nanoseconds exact enough to check in milliseconds. *)
let test_lineage_observations () =
  let entries =
    [
      entry 1_000_000L (Event.Ingress_replicated { vm = 0; ingress_seq = 0; copies = 1; size = 100 });
      entry 1_200_000L
        (Event.Packet_proposed
           { vm = 0; observer = 0; proposer = 0; ingress_seq = 0; virt_ns = 5_000_000L });
      entry 1_700_000L
        (Event.Median_adopted
           { vm = 0; replica = 0; ingress_seq = 0; virt_ns = 5_000_000L; proposals = [ (0, 5_000_000L) ] });
      entry 5_000_000L
        (Event.Packet_delivered { vm = 0; replica = 0; seq = 0; virt_ns = 5_000_000L });
      entry 6_000_000L (Event.Ingress_replicated { vm = 0; ingress_seq = 1; copies = 1; size = 100 });
      entry 6_100_000L
        (Event.Packet_proposed
           { vm = 0; observer = 0; proposer = 0; ingress_seq = 1; virt_ns = 9_000_000L });
      entry 6_400_000L
        (Event.Median_adopted
           { vm = 0; replica = 0; ingress_seq = 1; virt_ns = 9_000_000L; proposals = [ (0, 9_000_000L) ] });
      entry 9_000_000L
        (Event.Packet_delivered { vm = 0; replica = 0; seq = 1; virt_ns = 9_000_000L });
      entry 2_000_000L (Event.Egress_released { vm = 0; seq = 0; rank = 0; copies = 1 });
      entry 2_500_000L (Event.Egress_released { vm = 0; seq = 1; rank = 0; copies = 1 });
      entry 3_500_000L (Event.Egress_released { vm = 0; seq = 2; rank = 0; copies = 1 });
    ]
  in
  let obs = Lineage.observations (Lineage.of_entries entries) in
  let get mech = List.assoc_opt (0, mech) obs in
  (match get Lineage.Median_adoption with
  | Some [| a; b |] ->
      close "pa lag 1" 0.5 a;
      close "pa lag 2" 0.3 b
  | _ -> Alcotest.fail "median-adoption series shape");
  (match get Lineage.Delivery_gap with
  | Some [| g |] -> close "delivery gap" 4. g
  | _ -> Alcotest.fail "delivery-gap series shape");
  (match get Lineage.Egress_release with
  | Some [| a; b |] ->
      close "egress gap 1" 0.5 a;
      close "egress gap 2" 1. b
  | _ -> Alcotest.fail "egress-release series shape");
  match get Lineage.Ingress_latency with
  | Some [| a; b |] ->
      close "latency 1" 4. a;
      close "latency 2" 3. b
  | _ -> Alcotest.fail "ingress-latency series shape"

(* --- Audit driver ---------------------------------------------------------- *)

let test_audit_verdict_and_counters () =
  let rng = Prng.create 0xA0D17L in
  let registry = Registry.create () in
  let clean_null = draw rng 100 ~mean:3. ~stddev:0.5 in
  let clean_alt = draw rng 100 ~mean:3. ~stddev:0.5 in
  let hot_null = draw rng 100 ~mean:3. ~stddev:0.5 in
  let hot_alt = draw rng 100 ~mean:6. ~stddev:0.5 in
  let audit =
    Audit.run ~registry ~label:"t"
      [
        { Audit.key = "clean"; null = clean_null; alt = clean_alt };
        { Audit.key = "hot"; null = hot_null; alt = hot_alt };
        { Audit.key = "short"; null = [| 1. |]; alt = [| 2. |] };
      ]
  in
  Alcotest.(check bool) "audit leaks" true (Audit.leak audit);
  (match Audit.attribution audit with
  | [ ("hot", detectors) ] ->
      Alcotest.(check int) "all detectors flag hot" 5 (List.length detectors)
  | att ->
      Alcotest.failf "attribution shape: [%s]"
        (String.concat "; " (List.map fst att)));
  (match Audit.find audit "clean" with
  | Some f -> Alcotest.(check (list string)) "clean series" [] f.Audit.leaking
  | None -> Alcotest.fail "clean series missing");
  let snap = Registry.snapshot registry in
  Alcotest.(check int) "series counter" 3 (Snapshot.counter snap "leak.detector.series");
  Alcotest.(check int) "verdict counter" 15
    (Snapshot.counter snap "leak.detector.verdicts");
  (* The short series is skipped by all five detectors; each skip counts
     its n_null + n_alt = 2 samples. *)
  Alcotest.(check int) "dropped counter" 10
    (Snapshot.counter snap "leak.detector.samples_dropped")

let test_audit_report_deterministic () =
  let rng = Prng.create 0xF00DL in
  let null = draw rng 64 ~mean:1. ~stddev:0.2 in
  let alt = draw rng 64 ~mean:2. ~stddev:0.2 in
  let series = [ { Audit.key = "k"; null; alt } ] in
  let a = Audit.run ~label:"x" series and b = Audit.run ~label:"x" series in
  Alcotest.(check string) "byte-identical report"
    (Sw_runner.Report.to_string (Audit.to_report a))
    (Sw_runner.Report.to_string (Audit.to_report b))

let () =
  Alcotest.run "leak"
    [
      ( "special",
        [
          Alcotest.test_case "betai goldens" `Quick test_betai;
          Alcotest.test_case "probit" `Quick test_probit;
        ] );
      ( "welch",
        [
          Alcotest.test_case "golden" `Quick test_welch_golden;
          Alcotest.test_case "degenerate" `Quick test_welch_degenerate;
        ] );
      ( "mutual-info",
        [
          Alcotest.test_case "independent" `Quick test_mi_independent;
          Alcotest.test_case "identical" `Quick test_mi_identical;
          Alcotest.test_case "separated" `Quick test_mi_separated;
        ] );
      ("ks", [ Alcotest.test_case "p-value" `Quick test_ks_p_value ]);
      ( "battery",
        [
          Alcotest.test_case "false positives" `Quick
            test_battery_false_positives;
          Alcotest.test_case "shifted mean" `Quick test_battery_shifted_mean;
          Alcotest.test_case "undersized" `Quick test_undersized_verdict;
          Alcotest.test_case "distinguisher identity" `Quick
            test_distinguisher_identity;
        ] );
      ( "lineage",
        [ Alcotest.test_case "observations" `Quick test_lineage_observations ] );
      ( "audit",
        [
          Alcotest.test_case "verdict and counters" `Quick
            test_audit_verdict_and_counters;
          Alcotest.test_case "deterministic report" `Quick
            test_audit_report_deterministic;
        ] );
    ]
