(* Command-line front end for the StopWatch library:
     stopwatch plan     -- replica placement planning (Sec. VIII)
     stopwatch download -- file-retrieval benchmark (Fig. 5 point)
     stopwatch nfs      -- NFS latency benchmark (Fig. 6 point)
     stopwatch parsec   -- PARSEC runtime benchmark (Fig. 7 row)
     stopwatch attack   -- timing-attack scenario (Fig. 4 / Sec. IX)  *)

open Cmdliner

(* --- plan -------------------------------------------------------------- *)

let plan_cmd =
  let run n c greedy =
    let module P = Sw_placement.Placement in
    let plan_result =
      if greedy then Ok (P.greedy_place ~n ~c ~k:max_int)
      else P.theorem2_place ~n ~c ~k:(P.theorem2_bound ~n ~c)
    in
    match plan_result with
    | Error e ->
        Printf.eprintf "error: %s (try --greedy for arbitrary n)\n" e;
        1
    | Ok plan ->
        (match P.verify plan with
        | Ok () -> ()
        | Error e -> failwith ("invalid plan: " ^ e));
        let k = List.length plan.P.placements in
        List.iteri
          (fun vm tri ->
            Printf.printf "vm%d: %s\n" vm
              (String.concat ","
                 (List.map string_of_int (Sw_placement.Triangle.vertices tri))))
          plan.P.placements;
        Printf.printf
          "# %d guest VMs on %d machines (capacity %d); utilisation %.0f%%; \
           isolation bound %d\n"
          k n c
          (100. *. P.utilization plan)
          (P.isolation_bound ~n);
        0
  in
  let n = Arg.(value & opt int 15 & info [ "n"; "machines" ] ~doc:"Machine count.") in
  let c = Arg.(value & opt int 5 & info [ "c"; "capacity" ] ~doc:"Guests per machine.") in
  let greedy =
    Arg.(value & flag & info [ "greedy" ] ~doc:"Use the greedy packer (any n).")
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Plan replica placement under the StopWatch constraint")
    Term.(const run $ n $ c $ greedy)

(* --- download ----------------------------------------------------------- *)

(* Shared -j/--jobs option: shard a command's independent simulations over
   a sw_runner domain pool. Per-job seeds are fixed before dispatch, so any
   worker count reports the same numbers. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:"Worker domains for independent runs (1 = sequential).")

let with_pool jobs f =
  if jobs < 1 then begin
    Printf.eprintf "error: --jobs must be >= 1\n";
    1
  end
  else if jobs = 1 then f None
  else Sw_runner.Pool.with_pool ~workers:jobs (fun pool -> f (Some pool))

let download_cmd =
  let run size_kb udp baseline runs jobs =
    with_pool jobs (fun pool ->
        let open Sw_experiments in
        let protocol = if udp then File_transfer.Udp else File_transfer.Http in
        let o =
          File_transfer.run ?pool ~protocol ~stopwatch:(not baseline)
            ~size_bytes:(size_kb * 1024) ~runs ()
        in
        Printf.printf "%s %d KB, %s: %.1f ms (mean of %d runs; divergences %d)\n"
          (if udp then "UDP" else "HTTP")
          size_kb
          (if baseline then "baseline" else "stopwatch")
          o.File_transfer.elapsed_ms runs o.File_transfer.divergences;
        List.iter
          (fun f ->
            Printf.printf "  failed run: %s\n"
              (Format.asprintf "%a" Sw_runner.Runner.pp_failure f))
          o.File_transfer.failed_runs;
        0)
  in
  let size = Arg.(value & opt int 100 & info [ "size" ] ~doc:"File size in KB.") in
  let udp = Arg.(value & flag & info [ "udp" ] ~doc:"UDP+NAK instead of HTTP.") in
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Unmodified Xen instead of StopWatch.")
  in
  let runs = Arg.(value & opt int 3 & info [ "runs" ] ~doc:"Averaging runs.") in
  Cmd.v
    (Cmd.info "download" ~doc:"Time a file retrieval (Fig. 5 point)")
    Term.(const run $ size $ udp $ baseline $ runs $ jobs_arg)

(* --- nfs ------------------------------------------------------------------ *)

let nfs_cmd =
  let run rate ops baseline =
    let open Sw_experiments in
    let o = Nfs_bench.run ~stopwatch:(not baseline) ~rate_per_s:rate ~ops () in
    Printf.printf
      "NFS @ %.0f ops/s (%s): mean %.2f ms/op, %d/%d completed, %.2f c2s pkt/op, \
       %.2f s2c pkt/op\n"
      rate
      (if baseline then "baseline" else "stopwatch")
      o.Nfs_bench.mean_latency_ms o.Nfs_bench.completed o.Nfs_bench.issued
      o.Nfs_bench.client_to_server_per_op o.Nfs_bench.server_to_client_per_op;
    0
  in
  let rate = Arg.(value & opt float 100. & info [ "rate" ] ~doc:"Offered ops/s.") in
  let ops = Arg.(value & opt int 600 & info [ "ops" ] ~doc:"Total operations.") in
  let baseline = Arg.(value & flag & info [ "baseline" ] ~doc:"Unmodified Xen.") in
  Cmd.v
    (Cmd.info "nfs" ~doc:"NFS latency under load (Fig. 6 point)")
    Term.(const run $ rate $ ops $ baseline)

(* --- parsec ----------------------------------------------------------------- *)

let parsec_cmd =
  let run name baseline =
    let open Sw_experiments in
    match
      List.find_opt
        (fun (p : Sw_apps.Parsec.profile) -> p.Sw_apps.Parsec.name = name)
        Sw_apps.Parsec.all_profiles
    with
    | None ->
        Printf.eprintf "unknown app %S; available: %s\n" name
          (String.concat ", "
             (List.map
                (fun (p : Sw_apps.Parsec.profile) -> p.Sw_apps.Parsec.name)
                Sw_apps.Parsec.all_profiles));
        1
    | Some profile ->
        let o = Parsec_bench.run ~stopwatch:(not baseline) profile in
        Printf.printf "%s (%s): %.0f ms, %d disk interrupts, %d dd-violations\n" name
          (if baseline then "baseline" else "stopwatch")
          o.Parsec_bench.runtime_ms o.Parsec_bench.disk_interrupts
          o.Parsec_bench.delta_d_violations;
        0
  in
  let app_name =
    Arg.(value & pos 0 string "ferret" & info [] ~docv:"APP" ~doc:"PARSEC app name.")
  in
  let baseline = Arg.(value & flag & info [ "baseline" ] ~doc:"Unmodified Xen.") in
  Cmd.v
    (Cmd.info "parsec" ~doc:"Run a PARSEC-like workload (Fig. 7 row)")
    Term.(const run $ app_name $ baseline)

(* --- attack ------------------------------------------------------------------- *)

let attack_cmd =
  let run seconds baseline victim colluder replicas =
    let module S = Sw_attack.Scenario in
    let spec =
      S.with_replicas
        {
          S.default with
          S.duration = Sw_sim.Time.s seconds;
          baseline;
          victim;
          colluder;
        }
        replicas
    in
    let r = S.run spec in
    let obs = r.S.attacker_inter_delivery_ms in
    let n = Array.length obs in
    let mean = Array.fold_left ( +. ) 0. obs /. float_of_int n in
    Printf.printf
      "%s replicas=%d victim=%b colluder=%b: %d deliveries, mean inter-delivery \
       %.2f ms, divergences %d\n"
      (if baseline then "baseline" else "stopwatch")
      replicas victim colluder r.S.deliveries mean r.S.divergences;
    0
  in
  let seconds = Arg.(value & opt int 20 & info [ "seconds" ] ~doc:"Duration.") in
  let baseline = Arg.(value & flag & info [ "baseline" ] ~doc:"Unmodified Xen.") in
  let victim = Arg.(value & flag & info [ "victim" ] ~doc:"Coresident victim.") in
  let colluder = Arg.(value & flag & info [ "colluder" ] ~doc:"Sec. IX colluder.") in
  let replicas = Arg.(value & opt int 3 & info [ "replicas" ] ~doc:"Replica count.") in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run a timing-attack scenario (Fig. 4 / Sec. IX)")
    Term.(const run $ seconds $ baseline $ victim $ colluder $ replicas)

let () =
  let doc = "StopWatch: replicated-VM timing-channel mitigation (simulated)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "stopwatch" ~doc)
          [ plan_cmd; download_cmd; nfs_cmd; parsec_cmd; attack_cmd ]))
