(* Command-line front end for the StopWatch library:
     stopwatch plan     -- replica placement planning (Sec. VIII)
     stopwatch download -- file-retrieval benchmark (Fig. 5 point)
     stopwatch nfs      -- NFS latency benchmark (Fig. 6 point)
     stopwatch parsec   -- PARSEC runtime benchmark (Fig. 7 row)
     stopwatch attack   -- timing-attack scenario (Fig. 4 / Sec. IX)
     stopwatch trace    -- record a traced run; export Perfetto/JSONL,
                           reconstruct causal lineage
     stopwatch workload -- check/run declarative .scn scenarios (DSL)
     stopwatch soak     -- checkpointed, crash-resumable scenario run
     stopwatch bisect   -- first divergence between two soak timelines  *)

open Cmdliner

(* --- plan -------------------------------------------------------------- *)

let plan_cmd =
  let run n c greedy =
    let module P = Sw_placement.Placement in
    let plan_result =
      if greedy then Ok (P.greedy_place ~n ~c ~k:max_int)
      else P.theorem2_place ~n ~c ~k:(P.theorem2_bound ~n ~c)
    in
    match plan_result with
    | Error e ->
        Printf.eprintf "error: %s (try --greedy for arbitrary n)\n" e;
        1
    | Ok plan ->
        (match P.verify plan with
        | Ok () -> ()
        | Error e -> failwith ("invalid plan: " ^ e));
        let k = List.length plan.P.placements in
        List.iteri
          (fun vm tri ->
            Printf.printf "vm%d: %s\n" vm
              (String.concat ","
                 (List.map string_of_int (Sw_placement.Triangle.vertices tri))))
          plan.P.placements;
        Printf.printf
          "# %d guest VMs on %d machines (capacity %d); utilisation %.0f%%; \
           isolation bound %d\n"
          k n c
          (100. *. P.utilization plan)
          (P.isolation_bound ~n);
        0
  in
  let n = Arg.(value & opt int 15 & info [ "n"; "machines" ] ~doc:"Machine count.") in
  let c = Arg.(value & opt int 5 & info [ "c"; "capacity" ] ~doc:"Guests per machine.") in
  let greedy =
    Arg.(value & flag & info [ "greedy" ] ~doc:"Use the greedy packer (any n).")
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Plan replica placement under the StopWatch constraint")
    Term.(const run $ n $ c $ greedy)

(* --- download ----------------------------------------------------------- *)

(* Shared -j/--jobs option: shard a command's independent simulations over
   a sw_runner domain pool. Per-job seeds are fixed before dispatch, so any
   worker count reports the same numbers. *)
let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ]
        ~doc:"Worker domains for independent runs (1 = sequential).")

let with_pool jobs f =
  if jobs < 1 then begin
    Printf.eprintf "error: --jobs must be >= 1\n";
    1
  end
  else if jobs = 1 then f None
  else Sw_runner.Pool.with_pool ~workers:jobs (fun pool -> f (Some pool))

let download_cmd =
  let run size_kb udp baseline runs jobs =
    with_pool jobs (fun pool ->
        let open Sw_experiments in
        let protocol = if udp then File_transfer.Udp else File_transfer.Http in
        let o =
          File_transfer.run ?pool ~protocol ~stopwatch:(not baseline)
            ~size_bytes:(size_kb * 1024) ~runs ()
        in
        Printf.printf "%s %d KB, %s: %.1f ms (mean of %d runs; divergences %d)\n"
          (if udp then "UDP" else "HTTP")
          size_kb
          (if baseline then "baseline" else "stopwatch")
          o.File_transfer.elapsed_ms runs o.File_transfer.divergences;
        List.iter
          (fun f ->
            Printf.printf "  failed run: %s\n"
              (Format.asprintf "%a" Sw_runner.Runner.pp_failure f))
          o.File_transfer.failed_runs;
        0)
  in
  let size = Arg.(value & opt int 100 & info [ "size" ] ~doc:"File size in KB.") in
  let udp = Arg.(value & flag & info [ "udp" ] ~doc:"UDP+NAK instead of HTTP.") in
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Unmodified Xen instead of StopWatch.")
  in
  let runs = Arg.(value & opt int 3 & info [ "runs" ] ~doc:"Averaging runs.") in
  Cmd.v
    (Cmd.info "download" ~doc:"Time a file retrieval (Fig. 5 point)")
    Term.(const run $ size $ udp $ baseline $ runs $ jobs_arg)

(* --- nfs ------------------------------------------------------------------ *)

let nfs_cmd =
  let run rate ops baseline =
    let open Sw_experiments in
    let o = Nfs_bench.run ~stopwatch:(not baseline) ~rate_per_s:rate ~ops () in
    Printf.printf
      "NFS @ %.0f ops/s (%s): mean %.2f ms/op, %d/%d completed, %.2f c2s pkt/op, \
       %.2f s2c pkt/op\n"
      rate
      (if baseline then "baseline" else "stopwatch")
      o.Nfs_bench.mean_latency_ms o.Nfs_bench.completed o.Nfs_bench.issued
      o.Nfs_bench.client_to_server_per_op o.Nfs_bench.server_to_client_per_op;
    0
  in
  let rate = Arg.(value & opt float 100. & info [ "rate" ] ~doc:"Offered ops/s.") in
  let ops = Arg.(value & opt int 600 & info [ "ops" ] ~doc:"Total operations.") in
  let baseline = Arg.(value & flag & info [ "baseline" ] ~doc:"Unmodified Xen.") in
  Cmd.v
    (Cmd.info "nfs" ~doc:"NFS latency under load (Fig. 6 point)")
    Term.(const run $ rate $ ops $ baseline)

(* --- parsec ----------------------------------------------------------------- *)

let parsec_cmd =
  let run name baseline =
    let open Sw_experiments in
    match
      List.find_opt
        (fun (p : Sw_apps.Parsec.profile) -> p.Sw_apps.Parsec.name = name)
        Sw_apps.Parsec.all_profiles
    with
    | None ->
        Printf.eprintf "unknown app %S; available: %s\n" name
          (String.concat ", "
             (List.map
                (fun (p : Sw_apps.Parsec.profile) -> p.Sw_apps.Parsec.name)
                Sw_apps.Parsec.all_profiles));
        1
    | Some profile ->
        let o = Parsec_bench.run ~stopwatch:(not baseline) profile in
        Printf.printf "%s (%s): %.0f ms, %d disk interrupts, %d dd-violations\n" name
          (if baseline then "baseline" else "stopwatch")
          o.Parsec_bench.runtime_ms o.Parsec_bench.disk_interrupts
          o.Parsec_bench.delta_d_violations;
        0
  in
  let app_name =
    Arg.(value & pos 0 string "ferret" & info [] ~docv:"APP" ~doc:"PARSEC app name.")
  in
  let baseline = Arg.(value & flag & info [ "baseline" ] ~doc:"Unmodified Xen.") in
  Cmd.v
    (Cmd.info "parsec" ~doc:"Run a PARSEC-like workload (Fig. 7 row)")
    Term.(const run $ app_name $ baseline)

(* --- attack ------------------------------------------------------------------- *)

let attack_cmd =
  let run seconds baseline victim colluder replicas =
    let module S = Sw_attack.Scenario in
    let spec =
      S.with_replicas
        {
          S.default with
          S.duration = Sw_sim.Time.s seconds;
          baseline;
          victim;
          colluder;
        }
        replicas
    in
    let r = S.run spec in
    let obs = r.S.attacker_inter_delivery_ms in
    let n = Array.length obs in
    let mean = Array.fold_left ( +. ) 0. obs /. float_of_int n in
    Printf.printf
      "%s replicas=%d victim=%b colluder=%b: %d deliveries, mean inter-delivery \
       %.2f ms, divergences %d\n"
      (if baseline then "baseline" else "stopwatch")
      replicas victim colluder r.S.deliveries mean r.S.divergences;
    0
  in
  let seconds = Arg.(value & opt int 20 & info [ "seconds" ] ~doc:"Duration.") in
  let baseline = Arg.(value & flag & info [ "baseline" ] ~doc:"Unmodified Xen.") in
  let victim = Arg.(value & flag & info [ "victim" ] ~doc:"Coresident victim.") in
  let colluder = Arg.(value & flag & info [ "colluder" ] ~doc:"Sec. IX colluder.") in
  let replicas = Arg.(value & opt int 3 & info [ "replicas" ] ~doc:"Replica count.") in
  Cmd.v
    (Cmd.info "attack" ~doc:"Run a timing-attack scenario (Fig. 4 / Sec. IX)")
    Term.(const run $ seconds $ baseline $ victim $ colluder $ replicas)

(* --- trace -------------------------------------------------------------- *)

let escape_json buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* One object per line: timestamp, kind tag, structured fields rendered to
   the event's canonical one-line description. *)
let jsonl_of_entries ~meta entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"meta\":";
  Buffer.add_string buf (Sw_obs.Export.meta_json meta);
  Buffer.add_string buf "}\n";
  List.iter
    (fun (e : Sw_obs.Trace.entry) ->
      Buffer.add_string buf "{\"at_ns\":";
      Buffer.add_string buf (Int64.to_string e.Sw_obs.Trace.at_ns);
      Buffer.add_string buf ",\"kind\":";
      escape_json buf (Sw_obs.Event.label e.Sw_obs.Trace.event);
      Buffer.add_string buf ",\"text\":";
      escape_json buf
        (Format.asprintf "%a" Sw_obs.Event.pp e.Sw_obs.Trace.event);
      Buffer.add_string buf "}\n")
    entries;
  Buffer.contents buf

(* [--filter vm=0 --filter kind=median ...]: OR within one key, AND across
   keys. *)
let parse_filters filters =
  let vms = ref [] and replicas = ref [] and kinds = ref [] in
  let bad = ref None in
  List.iter
    (fun f ->
      match String.index_opt f '=' with
      | None -> bad := Some f
      | Some i -> (
          let key = String.sub f 0 i in
          let v = String.sub f (i + 1) (String.length f - i - 1) in
          match key with
          | "vm" -> (
              match int_of_string_opt v with
              | Some n -> vms := n :: !vms
              | None -> bad := Some f)
          | "replica" -> (
              match int_of_string_opt v with
              | Some n -> replicas := n :: !replicas
              | None -> bad := Some f)
          | "kind" -> kinds := v :: !kinds
          | _ -> bad := Some f))
    filters;
  match !bad with
  | Some f -> Error f
  | None ->
      let pass (e : Sw_obs.Trace.entry) =
        let ev = e.Sw_obs.Trace.event in
        (!vms = []
        || match Sw_obs.Event.vm_of ev with
           | Some vm -> List.mem vm !vms
           | None -> false)
        && (!replicas = []
           || match Sw_obs.Event.replica_of ev with
              | Some r -> List.mem r !replicas
              | None -> false)
        && (!kinds = [] || List.mem (Sw_obs.Event.label ev) !kinds)
      in
      Ok pass

let write_output output data =
  match output with
  | None -> print_string data
  | Some path ->
      let oc = open_out path in
      output_string oc data;
      close_out oc

(* Structural validation of a chrome export through the in-tree JSON
   reader: parses, has a traceEvents array, and carries at least one
   lineage flow edge. *)
let smoke_check ~crash ~lineage_data json =
  let module J = Sw_obs.Json in
  let fail msg =
    Printf.eprintf "trace smoke: FAIL: %s\n" msg;
    Error ()
  in
  match J.parse json with
  | Error e -> fail (Printf.sprintf "chrome export does not parse: %s" e)
  | Ok root -> (
      match Option.bind (J.member "traceEvents" root) J.to_list with
      | None -> fail "no traceEvents array"
      | Some events ->
          let flows =
            List.length
              (List.filter
                 (fun ev ->
                   match Option.bind (J.member "ph" ev) J.as_string with
                   | Some "s" -> true
                   | _ -> false)
                 events)
          in
          if flows = 0 then fail "no lineage flow arrows in export"
          else
            let orphans =
              List.length (Sw_obs.Lineage.orphans lineage_data)
            in
            if crash && orphans = 0 then
              fail "crash schedule produced no orphans"
            else if (not crash) && orphans > 0 then
              fail (Printf.sprintf "fault-free run has %d orphans" orphans)
            else begin
              Printf.printf
                "trace smoke OK: %d trace events, %d flow edges, %d chains, \
                 %d orphans\n"
                (List.length events) flows
                (Sw_obs.Lineage.total lineage_data)
                orphans;
              Ok ()
            end)

let trace_cmd =
  let run seconds seed replicas baseline victim colluder capacity export output
      lineage filters crash profile_on smoke =
    let module S = Sw_attack.Scenario in
    match parse_filters filters with
    | Error f ->
        Printf.eprintf
          "error: bad --filter %S (expected vm=N, replica=N or kind=LABEL)\n" f;
        1
    | Ok pass ->
        let tr = Sw_obs.Trace.create ~capacity () in
        let profile =
          if profile_on then Some (Sw_obs.Profile.create ~enabled:true ())
          else None
        in
        let duration = Sw_sim.Time.s seconds in
        let faults =
          if crash then
            (* Kill replica 0 of the attacker VM a quarter into the run, no
               restart: with the default config (no watchdog) the survivors
               stay quorum-starved, so every later packet's proposals never
               reach a median — the Unadopted_proposal orphans the lineage
               report tags. *)
            [
              Sw_fault.Schedule.at
                (Sw_sim.Time.of_float_s (float_of_int seconds *. 0.25))
                (Sw_fault.Fault.Replica_crash
                   { vm = 0; replica = 0; restart_after = None });
            ]
          else Sw_fault.Schedule.empty
        in
        let spec =
          S.with_replicas
            {
              S.default with
              S.duration;
              seed = Int64.of_int seed;
              baseline;
              victim;
              colluder;
              faults;
              trace = Some tr;
              profile;
            }
            replicas
        in
        ignore (S.run spec);
        let entries = List.filter pass (Sw_obs.Trace.entries tr) in
        let lineage_data =
          Sw_obs.Lineage.of_entries ~dropped:(Sw_obs.Trace.dropped tr) entries
        in
        let meta =
          Sw_obs.Export.meta ~seed:(Int64.of_int seed)
            ~scenario:
              (Printf.sprintf "attack m=%d baseline=%b victim=%b colluder=%b crash=%b"
                 replicas baseline victim colluder crash)
            ~trace_capacity:capacity
            ~trace_dropped:(Sw_obs.Trace.dropped tr) ~registry_enabled:true ()
        in
        let chrome () = Sw_obs.Chrome.to_json ~meta ?profile entries in
        (match export with
        | Some `Chrome -> write_output output (chrome ())
        | Some `Jsonl -> write_output output (jsonl_of_entries ~meta entries)
        | None -> ());
        (* Keep the summary off stdout when the export already went there. *)
        let summary_fmt =
          if lineage && export <> None && output = None then
            Format.err_formatter
          else Format.std_formatter
        in
        if lineage then
          Format.fprintf summary_fmt "%a@?" Sw_obs.Lineage.pp_summary
            lineage_data;
        if smoke then
          match smoke_check ~crash ~lineage_data (chrome ()) with
          | Ok () -> 0
          | Error () -> 1
        else 0
  in
  let seconds = Arg.(value & opt int 2 & info [ "seconds" ] ~doc:"Duration.") in
  let seed =
    Arg.(value & opt int 0xA77ACC & info [ "seed" ] ~doc:"Simulation seed.")
  in
  let replicas = Arg.(value & opt int 3 & info [ "replicas" ] ~doc:"Replica count.") in
  let baseline = Arg.(value & flag & info [ "baseline" ] ~doc:"Unmodified Xen.") in
  let victim = Arg.(value & flag & info [ "victim" ] ~doc:"Coresident victim.") in
  let colluder = Arg.(value & flag & info [ "colluder" ] ~doc:"Sec. IX colluder.") in
  let capacity =
    Arg.(value & opt int 65536 & info [ "capacity" ] ~doc:"Trace ring capacity.")
  in
  let export =
    Arg.(
      value
      & opt (some (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ])) None
      & info [ "export" ]
          ~doc:"Export format: $(b,chrome) (Perfetto-loadable trace-event \
                JSON with lineage flow arrows) or $(b,jsonl) (one event per \
                line).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the export here (default stdout).")
  in
  let lineage =
    Arg.(
      value & flag
      & info [ "lineage" ]
          ~doc:"Print the causal-lineage summary (chains, lag histograms, \
                median-win shares, skew, orphans).")
  in
  let filters =
    Arg.(
      value & opt_all string []
      & info [ "filter" ]
          ~doc:"Keep only matching events: $(b,vm=N), $(b,replica=N) or \
                $(b,kind=LABEL). Repeatable; same-key filters OR, distinct \
                keys AND.")
  in
  let crash =
    Arg.(
      value & flag
      & info [ "crash" ]
          ~doc:"Crash one replica a quarter into the run (no restart) to \
                demonstrate orphan detection.")
  in
  let profile_on =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Enable wall-clock self-profiling; timers export as counter \
                tracks. Non-deterministic — leave off when comparing \
                exports byte for byte.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Validate the chrome export structurally (parses, has flow \
                arrows, orphan count matches the fault schedule); exit \
                non-zero on failure.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Record a traced scenario; export Perfetto/JSONL and reconstruct \
             causal lineage")
    Term.(
      const run $ seconds $ seed $ replicas $ baseline $ victim $ colluder
      $ capacity $ export $ output $ lineage $ filters $ crash $ profile_on
      $ smoke)

(* --- workload ------------------------------------------------------------ *)

(* `stopwatch workload check FILES...` parses and validates .scn scenario
   files (reporting the DSL's line/column/field-path errors); `stopwatch
   workload run FILE` compiles and runs one, sharding its independent
   variants (load multipliers, attack variants) over -j worker domains. *)

module Dsl = Sw_workload.Dsl
module Wrun = Sw_workload.Run

let validate_scenario (t : Dsl.t) =
  match t.Dsl.kind with
  | Dsl.Attack _ -> Ok t
  | Dsl.Workload w -> (
      match Dsl.check_topology w with
      | Error e -> Error e
      | Ok () -> (
      (* Surface config errors at check time, not at run time. *)
      match
        Sw_workload.Flowgen.validate
          {
            Sw_workload.Flowgen.arrival = w.Dsl.arrival;
            classes = w.Dsl.classes;
            keyspace =
              Sw_workload.Keyspace.create ~keys:w.Dsl.keys ~theta:w.Dsl.theta;
            pool = w.Dsl.pool;
            max_per_conn = w.Dsl.max_per_conn;
            request_bytes = w.Dsl.request_bytes;
            until = w.Dsl.duration;
          };
        Sw_workload.Cache.validate_config w.Dsl.cache;
        Sw_fault.Schedule.validate w.Dsl.faults
      with
      | () -> Ok t
      | exception Invalid_argument e -> Error e))

let load_scenario file =
  match Dsl.load_file file with
  | Error e -> Error e
  | Ok t -> (
      match validate_scenario t with
      | Ok t -> Ok t
      | Error e -> Error (Printf.sprintf "%s: %s" file e))

let workload_check_cmd =
  let run files =
    let failures =
      List.filter_map
        (fun file ->
          match load_scenario file with
          | Ok t ->
              let kind =
                match t.Dsl.kind with
                | Dsl.Attack a ->
                    Printf.sprintf "attack, %d variants" (List.length a.Dsl.variants)
                | Dsl.Workload w ->
                    let topo =
                      match w.Dsl.topology with
                      | None -> ""
                      | Some t ->
                          Printf.sprintf ", %d hosts / %d shards" t.Dsl.hosts
                            t.Dsl.shards
                    in
                    Printf.sprintf "workload, %d load points%s"
                      (List.length w.Dsl.load_multipliers)
                      topo
              in
              Printf.printf "%s: OK (%s: %s)\n" file t.Dsl.name kind;
              None
          | Error e ->
              Printf.eprintf "%s\n" e;
              Some file)
        files
    in
    if failures = [] then 0 else 1
  in
  let files =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:".scn files.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and validate .scn scenario files")
    Term.(const run $ files)

let workload_report results =
  Sw_runner.Report.Obj
    (List.map
       (fun (key, (r : Wrun.result)) ->
         ( key,
           Sw_runner.Report.Obj
             [
               ("issued", Sw_runner.Report.Int r.Wrun.issued);
               ("completed", Sw_runner.Report.Int r.Wrun.completed);
               ("hits", Sw_runner.Report.Int r.Wrun.hits);
               ("misses", Sw_runner.Report.Int r.Wrun.misses);
               ("p50_ms", Sw_runner.Report.Float r.Wrun.p50_ms);
               ("p99_ms", Sw_runner.Report.Float r.Wrun.p99_ms);
             ] ))
       results)

let run_variants ~pool ~make jobs_list =
  let jobs =
    List.map
      (fun (key, spec) ->
        Sw_runner.Job.make ~key (fun ~seed:_ -> make spec))
      jobs_list
  in
  List.map2
    (fun (key, _) r -> (key, Sw_runner.Runner.get r))
    jobs_list
    (Sw_runner.Runner.map ?pool jobs)

(* One warm-start cache entry per (variant workload, shards, partition):
   the digest of the re-printed scenario already covers seed, duration,
   multiplier scaling, and the topology block, so any change to what gets
   built changes the key and misses the cache. *)
let warm_key ~name (w : Dsl.workload) ~shards ~partition =
  Printf.sprintf "workload:%s:shards=%d:partition=%s"
    (Digest.to_hex
       (Digest.string (Dsl.print { Dsl.name; kind = Dsl.Workload w })))
    (match (shards, w.Dsl.topology) with
    | Some s, Some _ -> s
    | _, Some t -> t.Dsl.shards
    | _, None -> 1)
    (match partition with
    | Some `Affinity -> "affinity"
    | Some `Contiguous -> "contiguous"
    | Some (`Assign _) -> "assign"  (* not reachable from the CLI *)
    | None -> "scenario")

let workload_run_cmd =
  let run file seconds jobs shards partition warm output smoke =
    with_pool jobs (fun pool ->
        match load_scenario file with
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            1
        | Ok { Dsl.name; kind = Dsl.Attack a } ->
            let a =
              match seconds with
              | None -> a
              | Some s -> { a with Dsl.duration = Sw_sim.Time.of_float_s s }
            in
            let results =
              run_variants ~pool ~make:Sw_attack.Scenario.run
                (Dsl.attack_specs a)
            in
            List.iter
              (fun (key, (r : Sw_attack.Scenario.result)) ->
                let obs = r.Sw_attack.Scenario.attacker_inter_delivery_ms in
                let n = Array.length obs in
                let mean =
                  if n = 0 then 0.
                  else Array.fold_left ( +. ) 0. obs /. float_of_int n
                in
                Printf.printf
                  "%s: %d deliveries, mean inter-delivery %.2f ms, divergences %d\n"
                  key r.Sw_attack.Scenario.deliveries mean
                  r.Sw_attack.Scenario.divergences)
              results;
            ignore name;
            0
        | Ok { Dsl.name; kind = Dsl.Workload w } -> (
            let w =
              match seconds with
              | None -> w
              | Some s -> { w with Dsl.duration = Sw_sim.Time.of_float_s s }
            in
            (* Pre-flight the --shards override here, where it can fail with
               a one-line message instead of a runner job-failure trace. *)
            let overridden =
              match (shards, w.Dsl.topology) with
              | Some s, Some t ->
                  { w with Dsl.topology = Some { t with Dsl.shards = s } }
              | _ -> w
            in
            match Dsl.check_topology overridden with
            | Error e ->
                Printf.eprintf "error: %s\n" e;
                1
            | Ok () ->
            let make w =
              match warm with
              | None -> Wrun.run ?shards ?partition w
              | Some dir -> (
                  (* Warm start: restore the prepared t=0 cloud from the
                     cache (or build and checkpoint it on first use), then
                     advance it — byte-identical to the cold path, which
                     the warm-start smoke pins. *)
                  let eff =
                    match (shards, w.Dsl.topology) with
                    | Some s, Some _ -> s
                    | _, Some t -> t.Dsl.shards
                    | _, None -> 1
                  in
                  match
                    Sw_ckpt.Warm.load_or_build ~dir
                      ~key:(warm_key ~name w ~shards ~partition)
                      ~seed:w.Dsl.seed ~shards:eff
                      ~build:(fun () -> Wrun.prepare ?shards ?partition w)
                  with
                  | Error e -> failwith ("warm-start cache: " ^ e)
                  | Ok (h, _) ->
                      Stopwatch.Cloud.run h.Wrun.cloud ~until:h.Wrun.until;
                      h.Wrun.finish ())
            in
            let results =
              run_variants ~pool ~make (Dsl.workload_variants ~name w)
            in
            List.iter
              (fun (key, (r : Wrun.result)) ->
                Printf.printf
                  "%s: issued %d, completed %d (hits %d / misses %d), p50 %.2f \
                   ms, p99 %.2f ms\n"
                  key r.Wrun.issued r.Wrun.completed r.Wrun.hits r.Wrun.misses
                  r.Wrun.p50_ms r.Wrun.p99_ms)
              results;
            let report = Sw_runner.Report.to_string (workload_report results) in
            Option.iter (fun path -> write_output (Some path) (report ^ "\n")) output;
            if not smoke then 0
            else begin
              (* Smoke contract: the emitted JSON round-trips through the
                 in-tree reader and every variant actually served traffic. *)
              let ok_json =
                match Sw_obs.Json.parse report with
                | Ok _ -> true
                | Error e ->
                    Printf.eprintf "workload smoke: report does not parse: %s\n" e;
                    false
              in
              let idle =
                List.filter (fun (_, r) -> r.Wrun.completed = 0) results
              in
              List.iter
                (fun (key, _) ->
                  Printf.eprintf "workload smoke: %s completed 0 requests\n" key)
                idle;
              if ok_json && idle = [] then begin
                Printf.printf "workload smoke OK: %d variant(s)\n"
                  (List.length results);
                0
              end
              else 1
            end))
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:".scn file.")
  in
  let seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "seconds" ] ~doc:"Override the scenario duration.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the per-variant JSON report here.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ]
          ~doc:"Conservative-parallel shard count for scenarios with a \
                topology block (overrides the block's own count; 1 runs the \
                whole cloud on one engine, byte-identically). Scenarios \
                without a topology block, and attack scenarios, always run \
                unsharded; the per-variant $(b,-j) pool composes with this \
                (each variant's cloud uses its own shard gang).")
  in
  let partition =
    Arg.(
      value
      & opt
          (some (enum [ ("contiguous", `Contiguous); ("affinity", `Affinity) ]))
          None
      & info [ "partition" ]
          ~doc:"Cell-to-shard placement for sharded topology scenarios, \
                overriding the block's own $(b,partition) field: \
                $(b,contiguous) cuts static blocks, $(b,affinity) packs \
                chatty cells co-shard (Sw_placement.Affinity over the \
                east-west traffic graph). Either way the report bytes are \
                identical; only the cross-shard message rate and wall time \
                change.")
  in
  let warm =
    Arg.(
      value
      & opt (some string) None
      & info [ "warm" ] ~docv:"DIR"
          ~doc:"Warm-start cache directory: restore each variant's \
                prepared t=0 cloud from a checkpoint image under \
                $(docv) instead of rebuilding it (building and caching it \
                on first use). Reports are byte-identical to a cold run. \
                Images are same-binary artifacts; stale ones are rebuilt \
                transparently.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Validate the run: the JSON report parses with the in-tree \
                reader and every variant completed requests; exit non-zero \
                otherwise.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and run a .scn scenario")
    Term.(
      const run $ file $ seconds $ jobs_arg $ shards $ partition $ warm
      $ output $ smoke)

let workload_cmd =
  Cmd.group
    (Cmd.info "workload"
       ~doc:"Declarative workload scenarios: check and run .scn files")
    [ workload_check_cmd; workload_run_cmd ]

(* --- soak ----------------------------------------------------------------- *)

(* Exit code of a --kill-after crash: distinctive, so harnesses (the
   runner's resumable jobs, the @soak-smoke rule) can tell a simulated
   crash from a real failure. *)
let killed_exit = 70

let soak_cmd =
  let run file dir every_s seconds shards kill_after keep output quiet =
    match load_scenario file with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        1
    | Ok { Dsl.kind = Dsl.Attack _; _ } ->
        Printf.eprintf "error: %s: soak needs a workload scenario\n" file;
        1
    | Ok ({ Dsl.kind = Dsl.Workload w; _ } as scn) -> (
        let w =
          match seconds with
          | None -> w
          | Some s -> { w with Dsl.duration = Sw_sim.Time.of_float_s s }
        in
        let scn = { scn with Dsl.kind = Dsl.Workload w } in
        let on_event ev =
          if not quiet then
            match ev with
            | Sw_ckpt.Soak.Resumed { index; sim_ns } ->
                Printf.eprintf "  [soak] resumed from checkpoint %d (t=%Ldns)\n%!"
                  index sim_ns
            | Sw_ckpt.Soak.Checkpointed { index; sim_ns; bytes; _ } ->
                Printf.eprintf "  [soak] checkpoint %d at %Ldns (%d bytes)\n%!"
                  index sim_ns bytes
            | Sw_ckpt.Soak.Skipped_image { path; error } ->
                Printf.eprintf "  [soak] skipped %s: %s\n%!" path
                  (Sw_ckpt.Image.error_to_string error)
            | Sw_ckpt.Soak.Leak_sampled { index; sim_ns; leak } ->
                Printf.eprintf "  [soak] leak sample at checkpoint %d (t=%Ldns): %s\n%!"
                  index sim_ns
                  (if leak then "drift flagged" else "clean")
            | Sw_ckpt.Soak.Finished { sim_ns } ->
                Printf.eprintf "  [soak] finished at %Ldns\n%!" sim_ns
        in
        match
          Sw_ckpt.Soak.run ~scenario:scn ?shards ~dir
            ~every:(Sw_sim.Time.of_float_s every_s)
            ?kill_after ?keep ~on_event ()
        with
        | exception Sw_ckpt.Soak.Killed { checkpoints; sim_ns } ->
            Printf.eprintf "  [soak] killed after %d checkpoint(s) at %Ldns\n%!"
              checkpoints sim_ns;
            killed_exit
        | exception Invalid_argument e ->
            Printf.eprintf "error: %s\n" e;
            1
        | Error e ->
            Printf.eprintf "error: %s\n"
              (Format.asprintf "%a" Sw_ckpt.Soak.pp_error e);
            1
        | Ok o ->
            let r = o.Sw_ckpt.Soak.result in
            (* Same line and report shape as `workload run`, and nothing
               about the recovery path in either: an interrupted-and-resumed
               soak must byte-match an uninterrupted one. *)
            Printf.printf
              "%s: issued %d, completed %d (hits %d / misses %d), p50 %.2f \
               ms, p99 %.2f ms\n"
              scn.Dsl.name r.Wrun.issued r.Wrun.completed r.Wrun.hits
              r.Wrun.misses r.Wrun.p50_ms r.Wrun.p99_ms;
            Option.iter
              (fun path ->
                write_output (Some path)
                  (Sw_runner.Report.to_string
                     (workload_report [ (scn.Dsl.name, r) ])
                  ^ "\n"))
              output;
            0)
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:".scn file.")
  in
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR" ~doc:"Checkpoint directory (created).")
  in
  let every =
    Arg.(
      value & opt float 0.25
      & info [ "every" ]
          ~doc:"Checkpoint interval in simulated seconds (absolute grid: a \
                resumed run captures the same instants as a straight one).")
  in
  let seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "seconds" ] ~doc:"Override the scenario duration.")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ]
          ~doc:"Shard-count override for scenarios with a topology block.")
  in
  let kill_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after" ]
          ~doc:"Crash (exit 70, no report) after writing N checkpoints in \
                this process — for exercising recovery; rerun the same \
                command to resume.")
  in
  let keep =
    Arg.(
      value
      & opt (some int) None
      & info [ "keep" ] ~doc:"Prune the timeline to the newest N images.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the final JSON report here.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No per-checkpoint progress.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Run a .scn workload with periodic checkpoints, resuming from \
             the newest valid image after a crash; the final report is \
             byte-identical however often the run was interrupted")
    Term.(
      const run $ file $ dir $ every $ seconds $ shards $ kill_after $ keep
      $ output $ quiet)

(* --- leak ------------------------------------------------------------------ *)

(* Pair the two configs' series by key (keys present on both sides only:
   the victim's own VM exists in just one run and has no counterpart). *)
let paired_series null alt =
  List.filter_map
    (fun (key, null_xs) ->
      match List.assoc_opt key alt with
      | Some alt_xs ->
          Some { Sw_leak.Audit.key; null = null_xs; alt = alt_xs }
      | None -> None)
    null

let leak_cmd =
  let module S = Sw_attack.Scenario in
  let module Detector = Sw_leak.Detector in
  let module Audit = Sw_leak.Audit in
  let run file seconds jobs output smoke =
    with_pool jobs (fun pool ->
        match load_scenario file with
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            1
        | Ok { Dsl.name; kind } ->
            let registry = Sw_obs.Registry.create () in
            let audits =
              match kind with
              | Dsl.Attack a ->
                  let a =
                    match seconds with
                    | None -> a
                    | Some s -> { a with Dsl.duration = Sw_sim.Time.of_float_s s }
                  in
                  let specs = Dsl.attack_specs a in
                  let series =
                    run_variants ~pool ~make:Sw_attack.Scenario.leak_series
                      specs
                  in
                  (* Group variants by configuration and audit victim (alt)
                     against no-victim (null) within each group. *)
                  let group_of (s : S.spec) =
                    (if s.S.baseline then "baseline" else "stopwatch")
                    ^ if s.S.colluder then "+colluder" else ""
                  in
                  let labels =
                    List.fold_left
                      (fun acc (_, spec) ->
                        let g = group_of spec in
                        if List.mem g acc then acc else acc @ [ g ])
                      [] specs
                  in
                  let tagged = List.combine specs series in
                  List.filter_map
                    (fun label ->
                      let side victim =
                        List.find_map
                          (fun ((_, spec), (_, xs)) ->
                            if group_of spec = label && spec.S.victim = victim
                            then Some xs
                            else None)
                          tagged
                      in
                      match (side false, side true) with
                      | Some null, Some alt ->
                          Some
                            (Audit.run ~registry ~label
                               (paired_series null alt))
                      | _ -> None)
                    labels
              | Dsl.Workload w ->
                  let w =
                    match seconds with
                    | None -> w
                    | Some s -> { w with Dsl.duration = Sw_sim.Time.of_float_s s }
                  in
                  let w = { w with Dsl.leak_audit = true } in
                  let variants =
                    [
                      ("leak/stopwatch-on", { w with Dsl.stopwatch = true });
                      ("leak/stopwatch-off", { w with Dsl.stopwatch = false });
                    ]
                  in
                  let results =
                    run_variants ~pool
                      ~make:(fun wv -> (Wrun.run wv).Wrun.leak_series)
                      variants
                  in
                  (match results with
                  | [ (_, null); (_, alt) ] ->
                      [
                        Audit.run ~registry
                          ~label:"stopwatch-off vs stopwatch-on"
                          (paired_series null alt);
                      ]
                  | _ -> [])
            in
            if audits = [] then begin
              Printf.eprintf
                "error: %s has no auditable config pair (need both a victim \
                 and a no-victim variant)\n"
                file;
              1
            end
            else begin
              (* The guest-visible verdict: detectors that flagged any
                 attacker-observable series. The vm*/... lineage series are
                 attribution — they say where a (possibly masked) host-level
                 signal lives, not what the guest can read. *)
              let starts_with p s =
                String.length s >= String.length p
                && String.sub s 0 (String.length p) = p
              in
              let guest_leaking (a : Audit.t) =
                List.sort_uniq compare
                  (List.concat_map
                     (fun (f : Audit.finding) ->
                       if starts_with "attacker/" f.Audit.f_key then
                         f.Audit.leaking
                       else [])
                     a.Audit.findings)
              in
              List.iter
                (fun (a : Audit.t) ->
                  let verdict =
                    match guest_leaking a with
                    | [] -> "guest-visible channel clean (no detector flags)"
                    | ds ->
                        Printf.sprintf "guest-visible channel LEAKS (%s)"
                          (String.concat ", " ds)
                  in
                  Printf.printf "%s: %s\n" a.Audit.label verdict;
                  List.iter
                    (fun (key, ds) ->
                      Printf.printf "  attribution: %s <- %s\n" key
                        (String.concat ", " ds))
                    (Audit.attribution a))
                audits;
              let report =
                Sw_runner.Report.Obj
                  [
                    ("name", Sw_runner.Report.String name);
                    ( "leakage",
                      Sw_runner.Report.List (List.map Audit.to_report audits) );
                    ( "metrics",
                      Sw_runner.Report.of_metrics
                        (Sw_obs.Registry.snapshot registry) );
                  ]
              in
              Option.iter
                (fun path ->
                  write_output (Some path)
                    (Sw_runner.Report.to_string report ^ "\n"))
                output;
              if not smoke then 0
              else begin
                (* Smoke contract: every StopWatch config hides the channel
                   from all five detectors; every baseline config is caught
                   by all five (across the attacker-observable series). *)
                let names =
                  List.sort_uniq compare
                    (List.map
                       (fun (d : Detector.t) -> d.Detector.name)
                       Detector.all)
                in
                let failures =
                  List.filter_map
                    (fun (a : Audit.t) ->
                      let leaking = guest_leaking a in
                      (* Exact group names only ("baseline", "stopwatch",
                         "...+colluder") — the workload kind's comparison
                         label also begins with "stopwatch" but carries no
                         masked/unmasked contrast to assert. *)
                      let is_group g =
                        a.Audit.label = g || starts_with (g ^ "+") a.Audit.label
                      in
                      if is_group "baseline" then begin
                        if leaking <> names then
                          Some
                            (Printf.sprintf
                               "%s: guest channel flagged by [%s], want all \
                                of [%s]"
                               a.Audit.label
                               (String.concat ", " leaking)
                               (String.concat ", " names))
                        else None
                      end
                      else if is_group "stopwatch" then begin
                        if leaking <> [] then
                          Some
                            (Printf.sprintf
                               "%s: guest channel flagged by [%s], want none"
                               a.Audit.label
                               (String.concat ", " leaking))
                        else None
                      end
                      else
                        Some
                          (Printf.sprintf
                             "%s: smoke needs an attack scenario's \
                              baseline/stopwatch config pairs"
                             a.Audit.label))
                    audits
                in
                if failures = [] then begin
                  Printf.printf "leak smoke OK: %d config pair(s), %d detectors\n"
                    (List.length audits) (List.length names);
                  0
                end
                else begin
                  List.iter
                    (fun msg -> Printf.eprintf "leak smoke: FAIL: %s\n" msg)
                    failures;
                  1
                end
              end
            end)
  in
  let file =
    Arg.(
      required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:".scn file.")
  in
  let seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "seconds" ] ~doc:"Override the scenario duration.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the JSON leakage report here.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Assert the expected verdicts: every baseline config pair \
                leaks under all five detectors and every StopWatch pair \
                under none; exit non-zero otherwise.")
  in
  Cmd.v
    (Cmd.info "leak"
       ~doc:"Audit a .scn scenario for timing leakage: run its config \
             pairs (victim vs no-victim per configuration for attack \
             scenarios, StopWatch-off vs -on for workloads), sweep the \
             detector battery over every lineage-attributed observation \
             series, and report per-detector p-values, effect sizes and \
             observations-needed curves")
    Term.(const run $ file $ seconds $ jobs_arg $ output $ smoke)

(* --- bisect ---------------------------------------------------------------- *)

let bisect_cmd =
  let run a b =
    match Sw_ckpt.Bisect.first_divergence ~a ~b with
    | Ok d ->
        Format.printf "%a@?" Sw_ckpt.Bisect.pp_divergence d;
        1
    | Error (Sw_ckpt.Bisect.No_divergence { compared }) ->
        Printf.printf "no divergence: all %d shared checkpoints agree\n"
          compared;
        0
    | Error e ->
        Printf.eprintf "error: %s\n"
          (Format.asprintf "%a" Sw_ckpt.Bisect.pp_error e);
        2
  in
  let a =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR_A" ~doc:"First checkpoint directory.")
  in
  let b =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"DIR_B" ~doc:"Second checkpoint directory.")
  in
  Cmd.v
    (Cmd.info "bisect"
       ~doc:"Find the first divergent checkpoint between two soak \
             timelines, the metrics that differ, and (single-shard sides) \
             the first divergent trace event with its causal lineage. \
             Exit: 0 = identical, 1 = divergence found (reported on \
             stdout), 2 = error — the diff convention")
    Term.(const run $ a $ b)

let () =
  let doc = "StopWatch: replicated-VM timing-channel mitigation (simulated)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "stopwatch" ~doc)
          [
            plan_cmd; download_cmd; nfs_cmd; parsec_cmd; attack_cmd; trace_cmd;
            workload_cmd; soak_cmd; bisect_cmd; leak_cmd;
          ]))
