(* An NFS-like service under load (the paper's Fig. 6 scenario): five client
   processes issue a realistic operation mix against a cloud-resident file
   server; we report the per-operation latency distribution under StopWatch
   and under unmodified Xen.

   Run with: dune exec examples/nfs_service.exe *)

module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud

let run ~stopwatch =
  let config = Sw_experiments.Nfs_bench.nfs_config in
  let cloud = Cloud.create ~config ~machines:3 () in
  let d =
    if stopwatch then Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:(Sw_apps.Nfs.server ())
    else Cloud.deploy_baseline cloud ~on:0 ~app:(Sw_apps.Nfs.server ())
  in
  let client = Cloud.add_host cloud () in
  let tcp = Sw_apps.Tcp_host.attach client ~config:Sw_apps.Nfs.client_tcp_config () in
  let get =
    Sw_apps.Nfs.run_client tcp ~dst:(Cloud.vm_address d) ~rate_per_s:100. ~procs:5
      ~ops:500 ()
  in
  Cloud.run cloud ~until:(Time.s 10);
  (get ()).Sw_apps.Nfs.latencies_ms

let describe label latencies =
  let n = Array.length latencies in
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let mean = Array.fold_left ( +. ) 0. latencies /. float_of_int n in
  Printf.printf "%-22s ops=%4d  mean %6.2f ms  p50 %6.2f  p95 %6.2f  p99 %6.2f\n"
    label n mean
    sorted.(n / 2)
    sorted.(n * 95 / 100)
    sorted.(n * 99 / 100)

let () =
  print_endline
    "NFS-like service, 100 ops/s over 5 client processes\n\
     (mix: 32% read, 24% lookup, 12% write, 12% create, 11% setattr, 8% getattr)\n";
  describe "unmodified Xen" (run ~stopwatch:false);
  describe "StopWatch" (run ~stopwatch:true);
  print_endline
    "\nReads that miss the server's buffer cache pay delta_d on top of the\n\
     disk; every inbound RPC pays delta_n for median agreement. The paper\n\
     measures the same <= 2.7x latency cost."
