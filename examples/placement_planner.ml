(* Replica placement planning (the paper's Sec. VIII): given n machines of
   capacity c, place as many guest VMs as Theorem 2 allows, each on a
   triangle of machines with pairwise non-overlapping coresidency sets, and
   compare against running VMs in isolation.

   Run with: dune exec examples/placement_planner.exe [n] [c] *)

module P = Sw_placement.Placement
module T = Sw_placement.Triangle

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 15 in
  let c = try int_of_string Sys.argv.(2) with _ -> 5 in
  Printf.printf "Planning a StopWatch cloud: n = %d machines, capacity c = %d\n\n" n c;
  match P.theorem2_place ~n ~c ~k:(P.theorem2_bound ~n ~c) with
  | Error reason ->
      Printf.printf "Theorem 2 does not apply (%s); falling back to greedy.\n" reason;
      let plan = P.greedy_place ~n ~c ~k:max_int in
      Printf.printf "Greedy placed %d guest VMs (isolation would allow %d).\n"
        (List.length plan.P.placements)
        (P.isolation_bound ~n)
  | Ok plan ->
      let k = List.length plan.P.placements in
      (match P.verify plan with
      | Ok () -> ()
      | Error e -> failwith ("internal error, invalid plan: " ^ e));
      Printf.printf "Placed %d guest VMs (three replicas each):\n" k;
      List.iteri
        (fun vm tri ->
          if vm < 12 then
            Printf.printf "  vm%-3d -> machines {%s}\n" vm
              (String.concat ", " (List.map string_of_int (T.vertices tri))))
        plan.P.placements;
      if k > 12 then Printf.printf "  ... and %d more\n" (k - 12);
      let loads = P.loads plan in
      Printf.printf "\nPer-machine guest count: %s\n"
        (String.concat " " (Array.to_list (Array.map string_of_int loads)));
      Printf.printf "Slot utilisation: %.0f%% of %d slots\n"
        (100. *. P.utilization plan)
        (n * c);
      Printf.printf
        "Isolation (one VM per machine) would run only %d VMs — StopWatch runs %.1fx \
         more.\n"
        (P.isolation_bound ~n)
        (float_of_int k /. float_of_int n)
