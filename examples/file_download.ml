(* File-download comparison (the paper's Fig. 5 in miniature): retrieve files
   over HTTP/TCP and over UDP with NAK-based reliability, from a StopWatch
   cloud and from unmodified Xen.

   The point the paper makes: StopWatch's cost is dominated by inbound
   packets (TCP ACKs); a transport that minimises client-to-server packets
   (NAK-based UDP) recovers almost all of it.

   Run with: dune exec examples/file_download.exe *)

open Sw_experiments

let () =
  print_endline "File retrieval latency (ms), 100 KB and 1 MB:\n";
  Printf.printf "%-10s %-6s %12s %12s %8s\n" "protocol" "size" "baseline" "stopwatch"
    "ratio";
  List.iter
    (fun (protocol, label) ->
      List.iter
        (fun size ->
          let b =
            File_transfer.run ~protocol ~stopwatch:false ~size_bytes:size ~runs:2 ()
          in
          let s =
            File_transfer.run ~protocol ~stopwatch:true ~size_bytes:size ~runs:2 ()
          in
          Printf.printf "%-10s %-6s %12.1f %12.1f %7.2fx\n" label
            (Printf.sprintf "%dKB" (size / 1024))
            b.File_transfer.elapsed_ms s.File_transfer.elapsed_ms
            (s.File_transfer.elapsed_ms /. b.File_transfer.elapsed_ms))
        [ 102_400; 1_048_576 ])
    [ (File_transfer.Http, "HTTP"); (File_transfer.Udp, "UDP+NAK") ];
  print_endline
    "\nHTTP suffers ~2.5-3x: every client ACK must go through ingress\n\
     replication and the three VMMs' median agreement before the server\n\
     guest sees it. UDP+NAK sends almost nothing inbound and stays near 1x."
