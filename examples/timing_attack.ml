(* The headline demonstration: an attacker VM tries to detect whether a
   victim VM (continuously serving files) is coresident with it, by timing
   the deliveries of its own packet stream.

   Without StopWatch the victim's device-model and disk load perturbs the
   attacker's observed inter-delivery times enough to detect coresidency in
   tens of observations; with StopWatch the observable timings are the median
   across three replicas (only one of which shares a machine with the
   victim), and the channel almost disappears.

   Run with: dune exec examples/timing_attack.exe *)

module Scenario = Sw_attack.Scenario
module D = Sw_attack.Distinguisher

let describe label (obs : float array) =
  let n = Array.length obs in
  let mean = Array.fold_left ( +. ) 0. obs /. float_of_int n in
  let sorted = Array.copy obs in
  Array.sort compare sorted;
  Printf.printf "  %-24s n=%4d  mean %6.2f ms   p50 %6.2f   p90 %6.2f\n" label n mean
    sorted.(n / 2)
    sorted.(n * 9 / 10)

let () =
  let base = { Scenario.default with Scenario.duration = Sw_sim.Time.s 30 } in
  print_endline "Attacker's virtual inter-delivery times:\n";
  print_endline "Unmodified Xen (attacker and victim share the machine):";
  let bl_no = Scenario.run { base with Scenario.baseline = true } in
  let bl_yes = Scenario.run { base with Scenario.baseline = true; victim = true } in
  describe "no victim" bl_no.Scenario.attacker_inter_delivery_ms;
  describe "victim coresident" bl_yes.Scenario.attacker_inter_delivery_ms;
  print_endline "\nStopWatch (three replicas, median delivery timing):";
  let sw_no = Scenario.run base in
  let sw_yes = Scenario.run { base with Scenario.victim = true } in
  describe "no victim" sw_no.Scenario.attacker_inter_delivery_ms;
  describe "victim coresident" sw_yes.Scenario.attacker_inter_delivery_ms;
  print_endline "\nObservations the attacker needs to detect the victim (chi-square):";
  Printf.printf "  %-12s %14s %14s\n" "confidence" "without SW" "with SW";
  let bl =
    D.sweep_empirical ~null:bl_no.Scenario.attacker_inter_delivery_ms
      ~alt:bl_yes.Scenario.attacker_inter_delivery_ms ()
  in
  let sw =
    D.sweep_empirical ~null:sw_no.Scenario.attacker_inter_delivery_ms
      ~alt:sw_yes.Scenario.attacker_inter_delivery_ms ()
  in
  List.iter2
    (fun (c, without_sw) (_, with_sw) ->
      Printf.printf "  %-12.2f %14.0f %14.0f\n" c without_sw with_sw)
    bl sw
