(* Quickstart: bring up a 3-machine StopWatch cloud, deploy one replicated
   guest VM running a tiny echo service, ping it from an external client, and
   compare the round-trip time with an unreplicated VM on unmodified Xen.

   Run with: dune exec examples/quickstart.exe *)

module Time = Sw_sim.Time
module Cloud = Stopwatch.Cloud
module Host = Stopwatch.Host
module App = Sw_vm.App
module Packet = Sw_net.Packet

(* Application payloads are ordinary extensible-variant cases. *)
type Packet.payload += Ping of int | Pong of int

(* A guest application is a deterministic state machine: events in, actions
   out. This one echoes every ping after a little compute. *)
let echo : App.factory =
  App.stateful ~init:() ~handle:(fun () ~virt_now:_ event ->
      match event with
      | App.Packet_in { Packet.payload = Ping n; src; _ } ->
          ( (),
            [
              App.Compute 50_000L (* ~50 us of guest work *);
              App.Send { dst = src; size = 100; payload = Pong n };
            ] )
      | _ -> ((), []))

let measure_rtts ~label ~deploy =
  let cloud = Cloud.create ~machines:3 () in
  let vm = deploy cloud in
  let client = Cloud.add_host cloud () in
  let rtts = ref [] in
  let sent_at = Hashtbl.create 16 in
  Host.set_handler client (fun pkt ->
      match pkt.Packet.payload with
      | Pong n ->
          let t0 = Hashtbl.find sent_at n in
          rtts := Time.to_float_ms (Time.sub (Host.now client) t0) :: !rtts
      | _ -> ());
  for n = 1 to 10 do
    Host.after client (Time.ms (100 * n)) (fun () ->
        Hashtbl.replace sent_at n (Host.now client);
        Host.send client ~dst:(Cloud.vm_address vm) ~size:100 (Ping n))
  done;
  Cloud.run cloud ~until:(Time.s 2);
  let n = List.length !rtts in
  let mean = List.fold_left ( +. ) 0. !rtts /. float_of_int n in
  Printf.printf "%-32s %d/10 pongs, mean RTT %5.2f ms (divergences: %d)\n" label n
    mean (Cloud.divergences vm);
  mean

let () =
  print_endline "StopWatch quickstart: echo service, replicated vs baseline\n";
  let sw =
    measure_rtts ~label:"StopWatch (3 replicas, median)" ~deploy:(fun cloud ->
        Cloud.deploy cloud ~on:[ 0; 1; 2 ] ~app:echo)
  in
  let bl =
    measure_rtts ~label:"Unmodified Xen (baseline)" ~deploy:(fun cloud ->
        Cloud.deploy_baseline cloud ~on:0 ~app:echo)
  in
  Printf.printf
    "\nStopWatch pays ~%.1fx in latency; in exchange, a coresident attacker's\n\
     timing observations are blunted by the median of three replicas\n\
     (see examples/timing_attack.exe).\n"
    (sw /. bl)
